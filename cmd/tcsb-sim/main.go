// Command tcsb-sim builds a paper-calibrated simulated IPFS world, runs
// it for a configurable number of days, and prints a summary of the
// population, topology and traffic — a quick way to sanity-check a
// scenario configuration before running the full experiment suite.
//
// Usage:
//
//	tcsb-sim [-seed N] [-scale F] [-days N] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"tcsb/internal/netsim"
	"tcsb/internal/report"
	"tcsb/internal/scenario"
	"tcsb/internal/trace"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	scale := flag.Float64("scale", 0.5, "population scale factor")
	days := flag.Int("days", 3, "days to simulate")
	workers := flag.Int("workers", runtime.NumCPU(), "goroutine pool size for tick phases (output is identical for every value; must be positive)")
	flag.Parse()

	// Non-positive shapes are configuration errors (exit 2), not silent
	// fallbacks: the pool never changes the output, so there is nothing
	// a zero-worker or zero-day run could mean.
	if *workers <= 0 {
		fmt.Fprintf(os.Stderr, "tcsb-sim: -workers must be positive (got %d)\n", *workers)
		os.Exit(2)
	}
	if *days <= 0 {
		fmt.Fprintf(os.Stderr, "tcsb-sim: -days must be positive (got %d)\n", *days)
		os.Exit(2)
	}
	if *scale <= 0 {
		fmt.Fprintf(os.Stderr, "tcsb-sim: -scale must be positive (got %g)\n", *scale)
		os.Exit(2)
	}

	cfg := scenario.DefaultConfig().Scaled(*scale)
	cfg.Seed = *seed

	start := time.Now()
	w := scenario.NewWorld(cfg)
	w.Workers = *workers
	build := time.Since(start)

	start = time.Now()
	w.RunDays(*days, func(day int) {
		fmt.Fprintf(os.Stderr, "day %d done (%d RPCs so far)\n", day, w.Net.TotalMessages())
	})
	runDur := time.Since(start)

	cloud, nat := 0, 0
	for _, id := range w.ServerIDs() {
		if a := w.Actors[id]; a != nil && a.Cloud {
			cloud++
		}
	}
	nat = len(w.ClientIDs())

	t := &report.Table{Title: "World summary", Columns: []string{"metric", "value"}}
	t.AddRow("seed", fmt.Sprintf("%d", cfg.Seed))
	t.AddRow("DHT servers", len(w.ServerIDs()))
	t.AddRow("  cloud-hosted", cloud)
	t.AddRow("NAT clients", nat)
	t.AddRow("gateways", len(w.Gateways))
	t.AddRow("hydra deployments", 1+len(w.PLHydras))
	t.AddRow("catalogue CIDs", w.CatalogSize())
	t.AddRow("live CIDs", len(w.LiveCIDs()))
	t.AddRow("build time", build.Round(time.Millisecond).String())
	t.AddRow("sim time", runDur.Round(time.Millisecond).String())
	fmt.Println(t)

	tr := &report.Table{Title: "Traffic totals", Columns: []string{"RPC", "count"}}
	for _, mt := range []netsim.MsgType{netsim.MsgFindNode, netsim.MsgGetProviders, netsim.MsgAddProvider, netsim.MsgBitswapWant} {
		tr.AddRow(mt.String(), fmt.Sprintf("%d", w.Net.MessageCount(mt)))
	}
	fmt.Println(tr)

	mix := w.Hydra.Stats().Mix()
	mx := &report.Table{Title: "Hydra vantage mix", Columns: []string{"class", "share"}}
	for _, cl := range []trace.Class{trace.Download, trace.Advertise, trace.Other} {
		mx.AddRow(cl.String(), report.Pct(mix[cl]))
	}
	fmt.Println(mx)
	fmt.Printf("monitor logged %d Bitswap broadcasts from %d peers\n",
		w.Monitor.Stats().Len(), w.Monitor.Requesters())
}
