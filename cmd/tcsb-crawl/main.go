// Command tcsb-crawl runs repeated DHT crawls against a simulated world
// and emits the crawl dataset (crawl ID, peer ID, IP) as CSV on stdout —
// the same normalized form as Table 1 of the paper, ready for the
// counting methodologies.
//
// Usage:
//
//	tcsb-crawl [-seed N] [-scale F] [-crawls N] [-gap H]
package main

import (
	"flag"
	"fmt"
	"os"

	"tcsb/internal/scenario"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	scale := flag.Float64("scale", 0.3, "population scale factor")
	crawls := flag.Int("crawls", 6, "number of crawls")
	gap := flag.Int("gap", 12, "hours of simulated time between crawls")
	flag.Parse()

	cfg := scenario.DefaultConfig().Scaled(*scale)
	cfg.Seed = *seed
	w := scenario.NewWorld(cfg)

	fmt.Println("crawl,peer,ip,provider,country")
	for i := 1; i <= *crawls; i++ {
		for t := 0; t < *gap; t++ {
			w.StepTick()
		}
		snap := w.Crawl(i)
		fmt.Fprintf(os.Stderr, "crawl %d: %d discovered, %d crawlable, %d RPCs, ~%.0fs modeled\n",
			i, snap.Discovered(), snap.Crawlable(), snap.RPCs, snap.ModeledDurationSec)
		prov := w.ProviderAttr()
		country := w.CountryAttr()
		for _, p := range snap.Order {
			for _, ip := range snap.Peers[p].IPs() {
				fmt.Printf("%d,%s,%s,%s,%s\n", i, p, ip, prov(ip), country(ip))
			}
		}
	}
}
