package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tcsb/internal/analyze"
	"tcsb/internal/core"
	"tcsb/internal/experiments"
	"tcsb/internal/runcache"
)

// testServer is a small fleet over a tiny worker budget — enough to
// exercise slot contention without slowing the suite down.
func testServer() *server {
	return newServer(2, 4, 64, "", nil)
}

// tinyRun is the smallest campaign that exercises the full pipeline:
// a fraction of the default population observed for one day.
func tinyRun() core.RunRequest {
	return core.RunRequest{Seed: 3, Scale: 0.05, Days: 1, Only: []string{"table1"}}
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func TestReadEndpoints(t *testing.T) {
	h := testServer().handler()

	if w := get(t, h, "/v1/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz: %d %s", w.Code, w.Body)
	}

	var catalog []experiments.Describe
	w := get(t, h, "/v1/experiments")
	if w.Code != http.StatusOK {
		t.Fatalf("experiments: %d %s", w.Code, w.Body)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &catalog); err != nil {
		t.Fatal(err)
	}
	if len(catalog) == 0 {
		t.Fatal("empty experiment catalog")
	}

	// Every catalog entry must be fetchable by name.
	if w := get(t, h, "/v1/experiments/"+catalog[0].Name); w.Code != http.StatusOK {
		t.Fatalf("experiments/%s: %d %s", catalog[0].Name, w.Code, w.Body)
	}
	if w := get(t, h, "/v1/experiments/no-such-figure"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown experiment: %d, want 404", w.Code)
	}

	var presets map[string][]map[string]any
	w = get(t, h, "/v1/presets")
	if err := json.Unmarshal(w.Body.Bytes(), &presets); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{"scale", "net", "timeline"} {
		if len(presets[family]) == 0 {
			t.Errorf("preset family %q is empty", family)
		}
	}

	if w := get(t, h, "/v1/interventions"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "hydra-dissolution") {
		t.Fatalf("interventions: %d %s", w.Code, w.Body)
	}
	if w := get(t, h, "/v1/cache"); w.Code != http.StatusOK {
		t.Fatalf("cache: %d %s", w.Code, w.Body)
	}
}

// TestRunRequestValidation pins the 4xx surface: malformed bodies,
// unknown fields and every Resolve rejection are client errors — the
// server never panics and never runs a campaign for invalid input.
func TestRunRequestValidation(t *testing.T) {
	h := testServer().handler()
	cases := []struct {
		name string
		body string
	}{
		{"malformed JSON", `{"seed":`},
		{"unknown field", `{"seed":1,"sclae":0.1}`},
		{"negative days", `{"days":-1}`},
		{"negative workers", `{"workers":-1}`},
		{"days in timeline mode", `{"days":2,"timeline":"epochs=2"}`},
		{"whatIf and timeline", `{"whatIf":"hydra-dissolution","timeline":"epochs=2"}`},
		{"unknown experiment", `{"only":["fig999"]}`},
		{"unknown intervention", `{"whatIf":"bogus"}`},
		{"bad net profile", `{"netProfile":"net.nope"}`},
		{"bad timeline grammar", `{"timeline":"epochs=zero"}`},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(http.MethodPost, "/v1/runs", strings.NewReader(tc.body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", w.Code, w.Body)
			}
			var e map[string]string
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e["error"] == "" {
				t.Fatalf("error body %q is not {\"error\": ...}", w.Body)
			}
		})
	}

	if w := get(t, testServer().handler(), "/v1/runs"); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/runs: %d, want 405", w.Code)
	}
}

// TestCacheHitByteIdentity is the acceptance pin for the run cache:
// in all three execution modes, the second POST of a request is a cache
// hit whose body is byte-identical to the fresh run AND to a direct
// engine execution of the same resolved request.
func TestCacheHitByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real campaigns")
	}
	modes := []struct {
		name string
		req  core.RunRequest
	}{
		{"run", tinyRun()},
		{"what-if", core.RunRequest{Seed: 3, Scale: 0.05, Days: 1, WhatIf: "hydra-dissolution", Only: []string{"whatif.fig3"}}},
		{"timeline", core.RunRequest{Seed: 3, Scale: 0.05, Timeline: "epochs=2;days=1", Only: []string{"timeline.population"}}},
	}
	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			s := testServer()
			h := s.handler()

			first := postJSON(t, h, "/v1/runs", m.req)
			if first.Code != http.StatusOK {
				t.Fatalf("first POST: %d %s", first.Code, first.Body)
			}
			if got := first.Header().Get("X-Tcsb-Cache"); got != "miss" {
				t.Fatalf("first POST X-Tcsb-Cache = %q, want miss", got)
			}
			second := postJSON(t, h, "/v1/runs", m.req)
			if second.Code != http.StatusOK {
				t.Fatalf("second POST: %d %s", second.Code, second.Body)
			}
			if got := second.Header().Get("X-Tcsb-Cache"); got != "hit" {
				t.Fatalf("second POST X-Tcsb-Cache = %q, want hit", got)
			}
			if k1, k2 := first.Header().Get("X-Tcsb-Run-Key"), second.Header().Get("X-Tcsb-Run-Key"); k1 == "" || k1 != k2 {
				t.Fatalf("run keys %q vs %q", k1, k2)
			}
			if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
				t.Fatal("cache hit is not byte-identical to the fresh run")
			}

			// And both equal a direct engine execution, bypassing the
			// server entirely — the cache serves real output, not a copy
			// that could drift.
			res, err := experiments.Resolve(m.req)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := res.ExecuteJSONL(nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first.Body.Bytes(), direct) {
				t.Fatal("served bytes differ from a direct engine run")
			}
		})
	}
}

// TestSweepValidation pins the all-before-any contract: one bad grid
// cell fails the whole sweep with a 400 naming the cell, before any
// simulation runs.
func TestSweepValidation(t *testing.T) {
	s := testServer()
	h := s.handler()

	w := postJSON(t, h, "/v1/sweeps", map[string]any{
		"seeds":       []int64{1, 2},
		"scales":      []float64{0.05},
		"netProfiles": []string{"net.ideal", "net.nope"},
		"days":        1,
	})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad cell: %d %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "net.nope") {
		t.Fatalf("error does not name the bad cell: %s", w.Body)
	}
	if st := s.cache.Stats(); st.Misses != 0 {
		t.Fatalf("sweep ran %d campaigns before validation finished", st.Misses)
	}

	// The grid bound is enforced before resolution.
	seeds := make([]int64, maxSweepRuns+1)
	for i := range seeds {
		seeds[i] = int64(i)
	}
	w = postJSON(t, h, "/v1/sweeps", map[string]any{"seeds": seeds, "days": 1})
	if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), "cap") {
		t.Fatalf("oversized sweep: %d %s", w.Code, w.Body)
	}
}

// TestSweepExecutesAndCoalesces runs a small grid twice: the first pass
// computes every distinct cell once (duplicate cells coalesce onto one
// campaign), the second is fully cache-served with identical bytes.
func TestSweepExecutesAndCoalesces(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real campaigns")
	}
	s := testServer()
	h := s.handler()
	spec := map[string]any{
		"seeds":  []int64{3, 4},
		"scales": []float64{0.05},
		"days":   1,
		"only":   []string{"table1"},
	}

	cold := postJSON(t, h, "/v1/sweeps", spec)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold sweep: %d %s", cold.Code, cold.Body)
	}
	var rows []sweepResult
	dec := json.NewDecoder(bytes.NewReader(cold.Body.Bytes()))
	for dec.More() {
		var r sweepResult
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, r)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for i, r := range rows {
		if r.Index != i || r.Key == "" || len(r.Results) == 0 {
			t.Fatalf("row %d malformed: %+v", i, r)
		}
	}
	if rows[0].Key == rows[1].Key {
		t.Fatal("different seeds share a key")
	}

	warm := postJSON(t, h, "/v1/sweeps", spec)
	if warm.Code != http.StatusOK {
		t.Fatalf("warm sweep: %d %s", warm.Code, warm.Body)
	}
	var warmRows []sweepResult
	dec = json.NewDecoder(bytes.NewReader(warm.Body.Bytes()))
	for dec.More() {
		var r sweepResult
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		warmRows = append(warmRows, r)
	}
	for i := range rows {
		if !warmRows[i].Cached {
			t.Errorf("warm row %d not cache-served", i)
		}
		a, _ := json.Marshal(rows[i].Results)
		b, _ := json.Marshal(warmRows[i].Results)
		if !bytes.Equal(a, b) {
			t.Errorf("warm row %d differs from cold row", i)
		}
	}
	if st := s.cache.Stats(); st.Misses != 2 {
		t.Fatalf("cache computed %d campaigns for 2 distinct cells run twice", st.Misses)
	}
}

// TestConcurrentRunsCoalesce hammers one key from many goroutines
// through the full HTTP stack; the fleet must run exactly one campaign
// and every response must be byte-identical. Run under -race in CI.
func TestConcurrentRunsCoalesce(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real campaigns")
	}
	s := testServer()
	h := s.handler()
	req := tinyRun()

	const clients = 8
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _ := json.Marshal(req)
			r := httptest.NewRequest(http.MethodPost, "/v1/runs", bytes.NewReader(b))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, r)
			if w.Code == http.StatusOK {
				bodies[i] = w.Body.Bytes()
			} else {
				t.Errorf("client %d: %d %s", i, w.Code, w.Body)
			}
		}(i)
	}
	wg.Wait()

	if st := s.cache.Stats(); st.Misses != 1 {
		t.Fatalf("%d campaigns ran for one key under concurrency", st.Misses)
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d received different bytes", i)
		}
	}
}

// TestRecoverMiddleware proves a handler panic surfaces as a 500 JSON
// error, not a dead process.
func TestRecoverMiddleware(t *testing.T) {
	s := testServer()
	mux := http.NewServeMux()
	mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	h := s.recoverPanics(mux)

	w := get(t, h, "/boom")
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", w.Code)
	}
	var e map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || !strings.Contains(e["error"], "kaboom") {
		t.Fatalf("body %q", w.Body)
	}
}

// TestWorkerClampNeverChangesBytes pins the fleet scheduler's safety
// property end to end: the same request at different worker allotments
// resolves one key and one byte stream.
func TestWorkerClampNeverChangesBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real campaigns")
	}
	wide := newServer(1, 8, 16, "", nil)
	narrow := newServer(4, 1, 16, "", nil)

	req := tinyRun()
	a := postJSON(t, wide.handler(), "/v1/runs", req)
	b := postJSON(t, narrow.handler(), "/v1/runs", req)
	if a.Code != http.StatusOK || b.Code != http.StatusOK {
		t.Fatalf("status %d / %d", a.Code, b.Code)
	}
	if a.Header().Get("X-Tcsb-Run-Key") != b.Header().Get("X-Tcsb-Run-Key") {
		t.Fatal("worker allotment leaked into the cache key")
	}
	if !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) {
		t.Fatal("worker allotment changed the output bytes")
	}
}

// waitStats polls the cache counters until ok returns true — the
// deterministic way to sequence concurrent requests in these tests
// without sleeping on real-time guesses.
func waitStats(t *testing.T, s *server, what string, ok func(runcache.Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !ok(s.cache.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s (stats %s)", what, s.cache.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCancelledClientDoesNotPoisonCoalesced is the regression pin for
// the coalescing bug: the flight owner's HTTP request is cancelled
// while the flight waits for a fleet slot, and a coalesced follower of
// the same key must still get a 200 with the full body — the flight
// belongs to the server, not to the requester that happened to start
// it.
func TestCancelledClientDoesNotPoisonCoalesced(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real campaign")
	}
	s := newServer(1, 2, 16, "", nil)
	h := s.handler()
	// Hold the only fleet slot: the flight parks at slot acquisition.
	s.slots <- struct{}{}

	body, err := json.Marshal(tinyRun())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	firstRec := httptest.NewRecorder()
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		h.ServeHTTP(firstRec, httptest.NewRequest(http.MethodPost, "/v1/runs", bytes.NewReader(body)).WithContext(ctx))
	}()
	waitStats(t, s, "the flight to register", func(st runcache.Stats) bool { return st.Misses == 1 })

	secondRec := httptest.NewRecorder()
	secondDone := make(chan struct{})
	go func() {
		defer close(secondDone)
		h.ServeHTTP(secondRec, httptest.NewRequest(http.MethodPost, "/v1/runs", bytes.NewReader(body)))
	}()
	waitStats(t, s, "the follower to coalesce", func(st runcache.Stats) bool { return st.Coalesced >= 1 })

	// Cancel the owner. Its request errors out; the flight must not.
	cancel()
	<-firstDone
	if firstRec.Code != http.StatusInternalServerError {
		t.Fatalf("cancelled owner got %d, want 500", firstRec.Code)
	}
	select {
	case <-secondDone:
		t.Fatal("follower returned while the flight was still parked")
	default:
	}

	// Release the slot: the detached flight computes and the follower is
	// served the full body.
	<-s.slots
	<-secondDone
	if secondRec.Code != http.StatusOK || secondRec.Body.Len() == 0 {
		t.Fatalf("follower got %d (%d bytes), want 200 with a full body", secondRec.Code, secondRec.Body.Len())
	}

	// The computed bytes landed in the cache: a third request is a hit
	// with identical bytes, and no recompute ever happened.
	third := postJSON(t, h, "/v1/runs", tinyRun())
	if third.Header().Get("X-Tcsb-Cache") != "hit" || !bytes.Equal(third.Body.Bytes(), secondRec.Body.Bytes()) {
		t.Fatal("flight result did not land in the cache intact")
	}
	if st := s.cache.Stats(); st.Misses != 1 {
		t.Fatalf("%d campaigns ran; the cancelled owner must not force a recompute", st.Misses)
	}
}

// streamRecorder is a ResponseWriter that surfaces each written NDJSON
// line as it arrives, so a test can observe streaming order while the
// handler is still running.
type streamRecorder struct {
	mu      sync.Mutex
	header  http.Header
	partial bytes.Buffer
	lines   chan string
	flushes atomic.Int32
}

func newStreamRecorder() *streamRecorder {
	return &streamRecorder{header: http.Header{}, lines: make(chan string, 64)}
}

func (r *streamRecorder) Header() http.Header { return r.header }
func (r *streamRecorder) WriteHeader(int)     {}
func (r *streamRecorder) Flush()              { r.flushes.Add(1) }

func (r *streamRecorder) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.partial.Write(p)
	for {
		s := r.partial.String()
		i := strings.IndexByte(s, '\n')
		if i < 0 {
			return len(p), nil
		}
		r.lines <- s[:i]
		r.partial.Next(i + 1)
	}
}

// TestSweepStreamsRows is the regression pin for the buffering bug:
// row i must be written and flushed as soon as cell i completes, never
// held until the whole grid finishes. Cell 0 is primed (instant hit)
// and cell 1 is blocked on the only fleet slot — so row 0 arriving
// while the slot is still held proves the handler streams.
func TestSweepStreamsRows(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real campaign")
	}
	s := newServer(1, 2, 16, "", nil)
	h := s.handler()

	res0, err := experiments.Resolve(core.RunRequest{Seed: 3, Scale: 0.05, Days: 1, Only: []string{"table1"}})
	if err != nil {
		t.Fatal(err)
	}
	fake := []byte(`{"experiment":"table1","section":"§2","table":{"title":"t","columns":["k","v"],"rows":[["total","5"]]}}` + "\n")
	s.cache.Prime(res0.Key, fake)
	s.slots <- struct{}{} // cell 1 parks here

	rec := newStreamRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/sweeps",
			strings.NewReader(`{"seeds":[3,4],"scales":[0.05],"days":1,"only":["table1"]}`)))
	}()

	select {
	case line := <-rec.lines:
		var row sweepResult
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("first streamed line: %v\n%s", err, line)
		}
		if row.Index != 0 || !row.Cached {
			t.Fatalf("first streamed row: %+v, want cached cell 0", row)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("row 0 did not stream while cell 1 was still computing")
	}
	if rec.flushes.Load() < 1 {
		t.Error("row 0 was written but never flushed to the client")
	}

	<-s.slots // release: cell 1 runs
	<-done
	select {
	case line := <-rec.lines:
		var row sweepResult
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("second streamed line: %v\n%s", err, line)
		}
		if row.Index != 1 || row.Cached || len(row.Results) == 0 {
			t.Fatalf("second streamed row: %+v, want computed cell 1", row)
		}
	default:
		t.Fatal("row 1 missing after the sweep finished")
	}
}

// TestSweepExpandDedupesBaseline pins the mode-axis dedupe: an
// explicit "" in whatIf and in timelines is the same baseline cell,
// and repeated entries never burn extra grid slots.
func TestSweepExpandDedupesBaseline(t *testing.T) {
	cases := []struct {
		name string
		spec sweepSpec
		want int
	}{
		{"both empty baselines", sweepSpec{Seeds: []int64{1}, WhatIf: []string{""}, Timelines: []string{""}}, 1},
		{"duplicate whatIf entries", sweepSpec{Seeds: []int64{1}, WhatIf: []string{"a", "a"}}, 1},
		{"baseline plus named", sweepSpec{Seeds: []int64{1}, WhatIf: []string{"", "a"}, Timelines: []string{""}}, 2},
		{"distinct modes survive", sweepSpec{Seeds: []int64{1}, WhatIf: []string{"a"}, Timelines: []string{"epochs=2"}}, 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := tc.spec.expand()
			if len(got) != tc.want {
				t.Fatalf("%d cells, want %d: %+v", len(got), tc.want, got)
			}
			for _, req := range got {
				if req.WhatIf != "" && req.Timeline != "" {
					t.Fatalf("cell mixes modes: %+v", req)
				}
			}
		})
	}
	one := sweepSpec{Seeds: []int64{1}, WhatIf: []string{""}, Timelines: []string{""}}.expand()[0]
	if one.WhatIf != "" || one.Timeline != "" {
		t.Fatalf("merged baseline cell is not plain: %+v", one)
	}
}

// TestSweepEchoesCanonicalRequest pins the response contract: the
// echoed request is the canonical client request — it must not grow
// workers/parallel values the server chose for its own scheduling.
func TestSweepEchoesCanonicalRequest(t *testing.T) {
	s := testServer()
	h := s.handler()
	res, err := experiments.Resolve(core.RunRequest{Seed: 3, Scale: 0.05, Days: 1, Only: []string{"table1"}})
	if err != nil {
		t.Fatal(err)
	}
	fake := []byte(`{"experiment":"table1","section":"§2","table":{"title":"t","columns":["k","v"],"rows":[["total","5"]]}}` + "\n")
	s.cache.Prime(res.Key, fake)

	w := postJSON(t, h, "/v1/sweeps", map[string]any{
		"seeds": []int64{3}, "scales": []float64{0.05}, "days": 1, "only": []string{"table1"},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("sweep: %d %s", w.Code, w.Body)
	}
	var row struct {
		Request map[string]any `json:"request"`
		Cached  bool           `json:"cached"`
	}
	line, _, _ := strings.Cut(w.Body.String(), "\n")
	if err := json.Unmarshal([]byte(line), &row); err != nil {
		t.Fatal(err)
	}
	if !row.Cached {
		t.Fatalf("primed cell not cache-served: %s", line)
	}
	for _, k := range []string{"parallel", "workers"} {
		if v, ok := row.Request[k]; ok {
			t.Errorf("echoed request grew %q=%v the client never sent", k, v)
		}
	}
}

// TestServerArchivePrimingAndAnalyze covers the archive lifecycle
// without running a campaign: a prior run persisted to the archive is
// primed at boot (served as a hit, misses stay 0), a stale manifest
// whose request no longer resolves to its key is skipped, and
// /v1/analyze reports over the same archive.
func TestServerArchivePrimingAndAnalyze(t *testing.T) {
	dir := t.TempDir()
	res, err := experiments.Resolve(tinyRun())
	if err != nil {
		t.Fatal(err)
	}
	fake := []byte(`{"experiment":"table1","section":"§2","table":{"title":"t","columns":["k","v"],"rows":[["total","5"]]}}` + "\n")
	if err := analyze.WriteArchive(dir, res.Key, res.Req, fake); err != nil {
		t.Fatal(err)
	}
	// A manifest whose key no longer matches its re-resolved request
	// (an archive from an older engine) must be skipped, never primed.
	stale := tinyRun()
	stale.Days = 2
	if err := analyze.WriteArchive(dir, "deadbeef", stale, fake); err != nil {
		t.Fatal(err)
	}

	s := newServer(2, 4, 64, dir, nil)
	primed, err := s.primeFromArchive()
	if err != nil {
		t.Fatal(err)
	}
	if primed != 1 {
		t.Fatalf("primed %d runs, want 1 (stale manifest must be skipped)", primed)
	}
	h := s.handler()

	w := postJSON(t, h, "/v1/runs", tinyRun())
	if w.Code != http.StatusOK || w.Header().Get("X-Tcsb-Cache") != "hit" {
		t.Fatalf("restarted server: %d cache=%s", w.Code, w.Header().Get("X-Tcsb-Cache"))
	}
	if !bytes.Equal(w.Body.Bytes(), fake) {
		t.Fatal("primed bytes differ from the archived run")
	}
	if st := s.cache.Stats(); st.Misses != 0 || st.Primed != 1 {
		t.Fatalf("stats after primed hit: %s, want misses=0 primed=1", st)
	}

	wa := get(t, h, "/v1/analyze")
	if wa.Code != http.StatusOK {
		t.Fatalf("GET /v1/analyze: %d %s", wa.Code, wa.Body)
	}
	var rep struct {
		Runs   int              `json:"runs"`
		Groups []map[string]any `json:"groups"`
		Alerts []map[string]any `json:"alerts"`
	}
	if err := json.Unmarshal(wa.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 2 || len(rep.Groups) != 2 || len(rep.Alerts) != 0 {
		t.Fatalf("report: %+v", rep)
	}

	wp := postJSON(t, h, "/v1/analyze", map[string]any{
		"rules": []map[string]any{{"column": "v", "max": 1}},
	})
	if wp.Code != http.StatusOK || wp.Header().Get("X-Tcsb-Alerts") != "2" {
		t.Fatalf("POST /v1/analyze: %d alerts=%q %s", wp.Code, wp.Header().Get("X-Tcsb-Alerts"), wp.Body)
	}

	if bad := postJSON(t, h, "/v1/analyze", map[string]any{"rules": []map[string]any{{"column": ""}}}); bad.Code != http.StatusBadRequest {
		t.Fatalf("invalid expectations: %d, want 400", bad.Code)
	}
	if off := get(t, testServer().handler(), "/v1/analyze"); off.Code != http.StatusNotFound {
		t.Fatalf("analyze without an archive: %d, want 404", off.Code)
	}
}
