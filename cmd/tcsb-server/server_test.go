package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tcsb/internal/core"
	"tcsb/internal/experiments"
)

// testServer is a small fleet over a tiny worker budget — enough to
// exercise slot contention without slowing the suite down.
func testServer() *server {
	return newServer(2, 4, 64, nil)
}

// tinyRun is the smallest campaign that exercises the full pipeline:
// a fraction of the default population observed for one day.
func tinyRun() core.RunRequest {
	return core.RunRequest{Seed: 3, Scale: 0.05, Days: 1, Only: []string{"table1"}}
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func TestReadEndpoints(t *testing.T) {
	h := testServer().handler()

	if w := get(t, h, "/v1/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz: %d %s", w.Code, w.Body)
	}

	var catalog []experiments.Describe
	w := get(t, h, "/v1/experiments")
	if w.Code != http.StatusOK {
		t.Fatalf("experiments: %d %s", w.Code, w.Body)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &catalog); err != nil {
		t.Fatal(err)
	}
	if len(catalog) == 0 {
		t.Fatal("empty experiment catalog")
	}

	// Every catalog entry must be fetchable by name.
	if w := get(t, h, "/v1/experiments/"+catalog[0].Name); w.Code != http.StatusOK {
		t.Fatalf("experiments/%s: %d %s", catalog[0].Name, w.Code, w.Body)
	}
	if w := get(t, h, "/v1/experiments/no-such-figure"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown experiment: %d, want 404", w.Code)
	}

	var presets map[string][]map[string]any
	w = get(t, h, "/v1/presets")
	if err := json.Unmarshal(w.Body.Bytes(), &presets); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{"scale", "net", "timeline"} {
		if len(presets[family]) == 0 {
			t.Errorf("preset family %q is empty", family)
		}
	}

	if w := get(t, h, "/v1/interventions"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "hydra-dissolution") {
		t.Fatalf("interventions: %d %s", w.Code, w.Body)
	}
	if w := get(t, h, "/v1/cache"); w.Code != http.StatusOK {
		t.Fatalf("cache: %d %s", w.Code, w.Body)
	}
}

// TestRunRequestValidation pins the 4xx surface: malformed bodies,
// unknown fields and every Resolve rejection are client errors — the
// server never panics and never runs a campaign for invalid input.
func TestRunRequestValidation(t *testing.T) {
	h := testServer().handler()
	cases := []struct {
		name string
		body string
	}{
		{"malformed JSON", `{"seed":`},
		{"unknown field", `{"seed":1,"sclae":0.1}`},
		{"negative days", `{"days":-1}`},
		{"negative workers", `{"workers":-1}`},
		{"days in timeline mode", `{"days":2,"timeline":"epochs=2"}`},
		{"whatIf and timeline", `{"whatIf":"hydra-dissolution","timeline":"epochs=2"}`},
		{"unknown experiment", `{"only":["fig999"]}`},
		{"unknown intervention", `{"whatIf":"bogus"}`},
		{"bad net profile", `{"netProfile":"net.nope"}`},
		{"bad timeline grammar", `{"timeline":"epochs=zero"}`},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(http.MethodPost, "/v1/runs", strings.NewReader(tc.body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", w.Code, w.Body)
			}
			var e map[string]string
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e["error"] == "" {
				t.Fatalf("error body %q is not {\"error\": ...}", w.Body)
			}
		})
	}

	if w := get(t, testServer().handler(), "/v1/runs"); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/runs: %d, want 405", w.Code)
	}
}

// TestCacheHitByteIdentity is the acceptance pin for the run cache:
// in all three execution modes, the second POST of a request is a cache
// hit whose body is byte-identical to the fresh run AND to a direct
// engine execution of the same resolved request.
func TestCacheHitByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real campaigns")
	}
	modes := []struct {
		name string
		req  core.RunRequest
	}{
		{"run", tinyRun()},
		{"what-if", core.RunRequest{Seed: 3, Scale: 0.05, Days: 1, WhatIf: "hydra-dissolution", Only: []string{"whatif.fig3"}}},
		{"timeline", core.RunRequest{Seed: 3, Scale: 0.05, Timeline: "epochs=2;days=1", Only: []string{"timeline.population"}}},
	}
	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			s := testServer()
			h := s.handler()

			first := postJSON(t, h, "/v1/runs", m.req)
			if first.Code != http.StatusOK {
				t.Fatalf("first POST: %d %s", first.Code, first.Body)
			}
			if got := first.Header().Get("X-Tcsb-Cache"); got != "miss" {
				t.Fatalf("first POST X-Tcsb-Cache = %q, want miss", got)
			}
			second := postJSON(t, h, "/v1/runs", m.req)
			if second.Code != http.StatusOK {
				t.Fatalf("second POST: %d %s", second.Code, second.Body)
			}
			if got := second.Header().Get("X-Tcsb-Cache"); got != "hit" {
				t.Fatalf("second POST X-Tcsb-Cache = %q, want hit", got)
			}
			if k1, k2 := first.Header().Get("X-Tcsb-Run-Key"), second.Header().Get("X-Tcsb-Run-Key"); k1 == "" || k1 != k2 {
				t.Fatalf("run keys %q vs %q", k1, k2)
			}
			if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
				t.Fatal("cache hit is not byte-identical to the fresh run")
			}

			// And both equal a direct engine execution, bypassing the
			// server entirely — the cache serves real output, not a copy
			// that could drift.
			res, err := experiments.Resolve(m.req)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := res.ExecuteJSONL(nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first.Body.Bytes(), direct) {
				t.Fatal("served bytes differ from a direct engine run")
			}
		})
	}
}

// TestSweepValidation pins the all-before-any contract: one bad grid
// cell fails the whole sweep with a 400 naming the cell, before any
// simulation runs.
func TestSweepValidation(t *testing.T) {
	s := testServer()
	h := s.handler()

	w := postJSON(t, h, "/v1/sweeps", map[string]any{
		"seeds":       []int64{1, 2},
		"scales":      []float64{0.05},
		"netProfiles": []string{"net.ideal", "net.nope"},
		"days":        1,
	})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad cell: %d %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "net.nope") {
		t.Fatalf("error does not name the bad cell: %s", w.Body)
	}
	if st := s.cache.Stats(); st.Misses != 0 {
		t.Fatalf("sweep ran %d campaigns before validation finished", st.Misses)
	}

	// The grid bound is enforced before resolution.
	seeds := make([]int64, maxSweepRuns+1)
	for i := range seeds {
		seeds[i] = int64(i)
	}
	w = postJSON(t, h, "/v1/sweeps", map[string]any{"seeds": seeds, "days": 1})
	if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), "cap") {
		t.Fatalf("oversized sweep: %d %s", w.Code, w.Body)
	}
}

// TestSweepExecutesAndCoalesces runs a small grid twice: the first pass
// computes every distinct cell once (duplicate cells coalesce onto one
// campaign), the second is fully cache-served with identical bytes.
func TestSweepExecutesAndCoalesces(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real campaigns")
	}
	s := testServer()
	h := s.handler()
	spec := map[string]any{
		"seeds":  []int64{3, 4},
		"scales": []float64{0.05},
		"days":   1,
		"only":   []string{"table1"},
	}

	cold := postJSON(t, h, "/v1/sweeps", spec)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold sweep: %d %s", cold.Code, cold.Body)
	}
	var rows []sweepResult
	dec := json.NewDecoder(bytes.NewReader(cold.Body.Bytes()))
	for dec.More() {
		var r sweepResult
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, r)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for i, r := range rows {
		if r.Index != i || r.Key == "" || len(r.Results) == 0 {
			t.Fatalf("row %d malformed: %+v", i, r)
		}
	}
	if rows[0].Key == rows[1].Key {
		t.Fatal("different seeds share a key")
	}

	warm := postJSON(t, h, "/v1/sweeps", spec)
	if warm.Code != http.StatusOK {
		t.Fatalf("warm sweep: %d %s", warm.Code, warm.Body)
	}
	var warmRows []sweepResult
	dec = json.NewDecoder(bytes.NewReader(warm.Body.Bytes()))
	for dec.More() {
		var r sweepResult
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		warmRows = append(warmRows, r)
	}
	for i := range rows {
		if !warmRows[i].Cached {
			t.Errorf("warm row %d not cache-served", i)
		}
		a, _ := json.Marshal(rows[i].Results)
		b, _ := json.Marshal(warmRows[i].Results)
		if !bytes.Equal(a, b) {
			t.Errorf("warm row %d differs from cold row", i)
		}
	}
	if st := s.cache.Stats(); st.Misses != 2 {
		t.Fatalf("cache computed %d campaigns for 2 distinct cells run twice", st.Misses)
	}
}

// TestConcurrentRunsCoalesce hammers one key from many goroutines
// through the full HTTP stack; the fleet must run exactly one campaign
// and every response must be byte-identical. Run under -race in CI.
func TestConcurrentRunsCoalesce(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real campaigns")
	}
	s := testServer()
	h := s.handler()
	req := tinyRun()

	const clients = 8
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _ := json.Marshal(req)
			r := httptest.NewRequest(http.MethodPost, "/v1/runs", bytes.NewReader(b))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, r)
			if w.Code == http.StatusOK {
				bodies[i] = w.Body.Bytes()
			} else {
				t.Errorf("client %d: %d %s", i, w.Code, w.Body)
			}
		}(i)
	}
	wg.Wait()

	if st := s.cache.Stats(); st.Misses != 1 {
		t.Fatalf("%d campaigns ran for one key under concurrency", st.Misses)
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d received different bytes", i)
		}
	}
}

// TestRecoverMiddleware proves a handler panic surfaces as a 500 JSON
// error, not a dead process.
func TestRecoverMiddleware(t *testing.T) {
	s := testServer()
	mux := http.NewServeMux()
	mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	h := s.recoverPanics(mux)

	w := get(t, h, "/boom")
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", w.Code)
	}
	var e map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || !strings.Contains(e["error"], "kaboom") {
		t.Fatalf("body %q", w.Body)
	}
}

// TestWorkerClampNeverChangesBytes pins the fleet scheduler's safety
// property end to end: the same request at different worker allotments
// resolves one key and one byte stream.
func TestWorkerClampNeverChangesBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real campaigns")
	}
	wide := newServer(1, 8, 16, nil)
	narrow := newServer(4, 1, 16, nil)

	req := tinyRun()
	a := postJSON(t, wide.handler(), "/v1/runs", req)
	b := postJSON(t, narrow.handler(), "/v1/runs", req)
	if a.Code != http.StatusOK || b.Code != http.StatusOK {
		t.Fatalf("status %d / %d", a.Code, b.Code)
	}
	if a.Header().Get("X-Tcsb-Run-Key") != b.Header().Get("X-Tcsb-Run-Key") {
		t.Fatal("worker allotment leaked into the cache key")
	}
	if !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) {
		t.Fatal("worker allotment changed the output bytes")
	}
}
