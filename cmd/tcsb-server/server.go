package main

// The control plane: a net/http JSON API over the simulation engine.
// Handlers reduce requests to core.RunRequest values, resolve them
// through the shared experiments.Resolve plumbing (the same validation
// and canonicalization path as the CLI — identical work resolves
// identical cache keys), and serve rendered JSONL out of the
// content-addressed run cache. Campaigns execute on a bounded fleet:
// `fleet` run slots over a global worker budget, each campaign getting
// budget/fleet workers — output is byte-identical for every allotment,
// so the scheduler can never change a response.
//
// Error surface: every invalid input is an HTTP 4xx with a JSON error
// body, every execution failure a 5xx; a recover middleware converts
// any stray panic into a 500 instead of killing the process. No
// request input can take the service down.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"strings"

	"tcsb/internal/analyze"
	"tcsb/internal/core"
	"tcsb/internal/counterfactual"
	"tcsb/internal/experiments"
	"tcsb/internal/netsim"
	"tcsb/internal/runcache"
	"tcsb/internal/scenario"
	"tcsb/internal/timeline"
)

// maxSweepRuns bounds one sweep request's expanded grid.
const maxSweepRuns = 256

type server struct {
	cache      *runcache.Cache
	slots      chan struct{} // fleet run slots; holding one runs a campaign
	perRun     int           // campaign workers per slot
	archiveDir string        // run archive: cache fills persist here ("" = off)
	logf       func(format string, args ...any)
}

// newServer wires the fleet scheduler: fleetSlots concurrent campaigns
// over a global budget of workers, perRun = budget/fleetSlots each.
// A non-empty archiveDir persists every cache fill as a run archive
// (<key>.jsonl + manifest) and enables the /v1/analyze endpoint.
func newServer(fleetSlots, budget, cacheEntries int, archiveDir string, logf func(string, ...any)) *server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	perRun := budget / fleetSlots
	if perRun < 1 {
		perRun = 1
	}
	return &server{
		cache:      runcache.New(cacheEntries),
		slots:      make(chan struct{}, fleetSlots),
		perRun:     perRun,
		archiveDir: archiveDir,
		logf:       logf,
	}
}

// primeFromArchive warms the run cache from the archive directory at
// boot, so a restarted server serves previously computed runs as hits
// (misses stay 0 across a restart). Every manifest request is
// re-resolved and must still canonicalize to its archived key: an
// archive written by an older engine whose config digest moved on is
// skipped (logged), never served under a stale address.
func (s *server) primeFromArchive() (int, error) {
	runs, err := analyze.LoadArchive(s.archiveDir)
	if err != nil {
		return 0, err
	}
	primed := 0
	for _, run := range runs {
		res, err := experiments.Resolve(run.Request)
		if err != nil || res.Key != run.Key {
			s.logf("archive %s: stale (re-resolves to err=%v key=%q); skipping", run.Key, err, keyOf(res))
			continue
		}
		if s.cache.Prime(run.Key, run.Raw) {
			primed++
		}
	}
	return primed, nil
}

func keyOf(res *experiments.Resolved) string {
	if res == nil {
		return ""
	}
	return res.Key
}

// handler builds the route table behind the recover middleware.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/experiments", s.handleExperiments)
	mux.HandleFunc("/v1/experiments/", s.handleExperiment)
	mux.HandleFunc("/v1/interventions", s.handleInterventions)
	mux.HandleFunc("/v1/presets", s.handlePresets)
	mux.HandleFunc("/v1/cache", s.handleCache)
	mux.HandleFunc("/v1/runs", s.handleRuns)
	mux.HandleFunc("/v1/sweeps", s.handleSweeps)
	mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	return s.recoverPanics(mux)
}

// recoverPanics converts a handler panic into a 500 JSON error: the
// API boundary contract is that no request input crashes the service.
func (s *server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", v))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// writeError emits the JSON error body every failure path shares.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"status": "ok",
		"fleet":  cap(s.slots),
		"perRun": s.perRun,
	})
}

// handleExperiments serves the machine-readable registry.
func (s *server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, experiments.Catalog())
}

// handleExperiment serves one registry entry by name.
func (s *server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/v1/experiments/")
	for _, d := range experiments.Catalog() {
		if d.Name == name {
			writeJSON(w, d)
			return
		}
	}
	writeError(w, http.StatusNotFound, fmt.Sprintf("unknown experiment %q; GET /v1/experiments lists the catalog", name))
}

func (s *server) handleInterventions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	type row struct {
		Name        string `json:"name"`
		Description string `json:"description"`
		// ConstructionOnly interventions run under whatIf but cannot
		// fire at timeline epochs.
		ConstructionOnly bool `json:"constructionOnly,omitempty"`
	}
	var out []row
	for _, iv := range counterfactual.All() {
		out = append(out, row{iv.Name, iv.Description, iv.ConstructionOnly})
	}
	writeJSON(w, out)
}

func (s *server) handlePresets(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	type named struct {
		Name        string `json:"name"`
		Spec        string `json:"spec,omitempty"`
		Description string `json:"description"`
	}
	out := map[string][]named{}
	for _, p := range scenario.ScalePresets() {
		out["scale"] = append(out["scale"], named{Name: p.Name, Description: p.Description})
	}
	for _, p := range netsim.LinkPresets() {
		out["net"] = append(out["net"], named{p.Name, p.Spec, p.Description})
	}
	for _, p := range timeline.Presets() {
		out["timeline"] = append(out["timeline"], named{p.Name, p.Spec, p.Description})
	}
	writeJSON(w, out)
}

func (s *server) handleCache(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, s.cache.Stats())
}

// decodeRequest parses a RunRequest body strictly: unknown fields are
// a 400, not a silent drop — a typoed field name must never quietly
// run the wrong campaign.
func decodeRequest(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("request body: %w", err)
	}
	return nil
}

// compute serves res from the cache, running the campaign on a fleet
// slot on a miss. Concurrent identical requests coalesce into one
// computation (runcache single-flight). ctx gates only this caller's
// wait: the flight itself runs detached on server lifetime — slot
// acquisition included — so a client that cancels mid-flight (even the
// one that started it) never poisons the coalesced followers, and the
// finished bytes still land in the cache. Cache fills persist to the
// run archive when one is configured; an archive write failure is
// logged, not served — the response bytes are already correct.
func (s *server) compute(ctx context.Context, res *experiments.Resolved) ([]byte, bool, error) {
	return s.cache.GetOrComputeCtx(ctx, res.Key, func() ([]byte, error) {
		s.slots <- struct{}{}
		defer func() { <-s.slots }()
		s.logf("run %s: %s", res.Key[:12], res.Mode)
		body, err := res.ExecuteJSONL(nil)
		if err == nil && s.archiveDir != "" {
			if aerr := analyze.WriteArchive(s.archiveDir, res.Key, res.Req, body); aerr != nil {
				s.logf("archive %s: %v", res.Key[:12], aerr)
			}
		}
		return body, err
	})
}

// resolveForFleet resolves a request and pins its worker allotment to
// the fleet share (a client may ask for fewer, never more; the output
// is byte-identical either way, so the clamp can never change a
// response).
func (s *server) resolveForFleet(req core.RunRequest) (*experiments.Resolved, error) {
	res, err := experiments.Resolve(req)
	if err != nil {
		return nil, err
	}
	workers := s.perRun
	if req.Workers > 0 && req.Workers < workers {
		workers = req.Workers
	}
	res.RC.Workers = workers
	// Raise derivation parallelism through Resolved.Parallel, never by
	// mutating the canonical request: res.Req is what responses echo and
	// archives record, and it must not grow a parallel value the client
	// never sent (the output is byte-identical either way).
	if res.Parallel < 1 {
		res.Parallel = 2
	}
	return res, nil
}

// handleRuns is the single-run endpoint: POST a core.RunRequest, get
// the run's JSONL stream — from the cache when the key is warm
// (byte-identical to a fresh run; X-Tcsb-Cache says which).
func (s *server) handleRuns(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a run request")
		return
	}
	var req core.RunRequest
	if err := decodeRequest(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	res, err := s.resolveForFleet(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	body, hit, err := s.compute(r.Context(), res)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Tcsb-Run-Key", res.Key)
	w.Header().Set("X-Tcsb-Cache", cacheLabel(hit))
	w.Write(body)
}

func cacheLabel(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// handleAnalyze is the analyze-only endpoint: the longitudinal
// analyzer over the server's own run archive. GET analyzes with no
// expectations (deltas and drifts only); POST takes an expectations
// document — the same rule schema as a checked-in expectations.json —
// and additionally reports alerts against it. The response is the full
// report JSON, byte-identical to the CLI's `-analyze -json` over the
// same archive.
func (s *server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if s.archiveDir == "" {
		writeError(w, http.StatusNotFound, "no run archive: start the server with -archive-dir to enable /v1/analyze")
		return
	}
	var exp analyze.Expectations
	switch r.Method {
	case http.MethodGet:
	case http.MethodPost:
		body, err := io.ReadAll(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("request body: %v", err))
			return
		}
		if exp, err = analyze.ParseExpectations(body); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET, or POST an expectations document")
		return
	}
	runs, err := analyze.LoadArchive(s.archiveDir)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("archive: %v", err))
		return
	}
	rep := analyze.Analyze(runs, exp)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Tcsb-Alerts", fmt.Sprint(len(rep.Alerts)))
	if err := analyze.RenderJSON(w, rep); err != nil {
		s.logf("analyze render: %v", err)
	}
}

// sweepSpec is the parameter-sweep grammar: every list is one grid
// axis, the cross product is the run fleet. whatIf and timelines merge
// into a single mode axis — each whatIf entry is a paired
// counterfactual cell, each timelines entry a longitudinal cell, and
// an explicit "" in either is the plain baseline. days applies to the
// non-timeline cells (timeline schedules own their calendar); epochs
// applies to the timeline cells.
type sweepSpec struct {
	Seeds        []int64   `json:"seeds"`
	Scales       []float64 `json:"scales,omitempty"`
	Presets      []string  `json:"presets,omitempty"`
	NetProfiles  []string  `json:"netProfiles,omitempty"`
	WhatIf       []string  `json:"whatIf,omitempty"`
	Timelines    []string  `json:"timelines,omitempty"`
	AttackParams string    `json:"attackParams,omitempty"`
	Days         int       `json:"days,omitempty"`
	Epochs       int       `json:"epochs,omitempty"`
	Only         []string  `json:"only,omitempty"`
}

// expand builds the grid in deterministic order:
// seeds × scales × presets × netProfiles × (whatIf ∪ timelines).
func (sp sweepSpec) expand() []core.RunRequest {
	one := func(vs []string) []string {
		if len(vs) == 0 {
			return []string{""}
		}
		return vs
	}
	seeds := sp.Seeds
	if len(seeds) == 0 {
		seeds = []int64{0}
	}
	scales := sp.Scales
	if len(scales) == 0 {
		scales = []float64{0}
	}
	// Dedupe the mode axis: an explicit "" means the plain baseline in
	// either list, so whatIf ∪ timelines must merge the two spellings
	// into one cell — `"whatIf":[""], "timelines":[""]` is one baseline,
	// not two identical runs burning a grid slot each.
	type modeCell struct{ whatIf, timeline string }
	var modes []modeCell
	seen := make(map[modeCell]bool)
	addMode := func(m modeCell) {
		if m.whatIf == "" && m.timeline == "" {
			m = modeCell{}
		}
		if !seen[m] {
			seen[m] = true
			modes = append(modes, m)
		}
	}
	for _, wi := range sp.WhatIf {
		addMode(modeCell{whatIf: wi})
	}
	for _, tl := range sp.Timelines {
		addMode(modeCell{timeline: tl})
	}
	if len(modes) == 0 {
		modes = []modeCell{{}}
	}

	var out []core.RunRequest
	for _, seed := range seeds {
		for _, scale := range scales {
			for _, preset := range one(sp.Presets) {
				for _, np := range one(sp.NetProfiles) {
					for _, m := range modes {
						req := core.RunRequest{
							Seed:         seed,
							Scale:        scale,
							Preset:       preset,
							NetProfile:   np,
							AttackParams: sp.AttackParams,
							WhatIf:       m.whatIf,
							Timeline:     m.timeline,
							Only:         sp.Only,
						}
						if m.timeline == "" {
							req.Days = sp.Days
						} else {
							req.Epochs = sp.Epochs
						}
						out = append(out, req)
					}
				}
			}
		}
	}
	return out
}

// sweepResult is one grid cell's NDJSON line.
type sweepResult struct {
	Index   int               `json:"index"`
	Request core.RunRequest   `json:"request"`
	Key     string            `json:"key"`
	Cached  bool              `json:"cached"`
	Results []json.RawMessage `json:"results"`
}

// handleSweeps expands a sweep grid, validates every cell before any
// simulation runs, executes the fleet under the bounded slots (cache
// coalescing deduplicates identical cells), and streams one NDJSON
// line per cell in grid order.
func (s *server) handleSweeps(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a sweep spec")
		return
	}
	var spec sweepSpec
	if err := decodeRequest(r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	reqs := spec.expand()
	if len(reqs) > maxSweepRuns {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("sweep expands to %d runs, above the %d-run cap; split it", len(reqs), maxSweepRuns))
		return
	}
	// Validate the whole grid first: a bad cell fails the sweep before
	// any compute is spent on the good ones.
	resolved := make([]*experiments.Resolved, len(reqs))
	for i, req := range reqs {
		res, err := s.resolveForFleet(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("sweep cell %d (%+v): %v", i, req, err))
			return
		}
		resolved[i] = res
	}
	s.logf("sweep: %d cells", len(resolved))

	// Stream in grid order: every cell computes concurrently under the
	// fleet slots, but row i is written — and flushed — the moment cell
	// i completes, never buffered behind the slowest cell in the grid. A
	// client watching the stream sees finished rows immediately (cached
	// cells first of all), instead of silence until the whole sweep ends.
	type cell struct {
		body []byte
		hit  bool
		err  error
	}
	cells := make([]cell, len(resolved))
	dones := make([]chan struct{}, len(resolved))
	for i := range resolved {
		dones[i] = make(chan struct{})
		go func(i int) {
			body, hit, err := s.compute(r.Context(), resolved[i])
			cells[i] = cell{body, hit, err}
			close(dones[i])
		}(i)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := range resolved {
		<-dones[i]
		c := cells[i]
		if c.err != nil {
			enc.Encode(map[string]any{"index": i, "key": resolved[i].Key, "error": c.err.Error()})
		} else {
			var lines []json.RawMessage
			for _, line := range strings.Split(strings.TrimRight(string(c.body), "\n"), "\n") {
				if line != "" {
					lines = append(lines, json.RawMessage(line))
				}
			}
			enc.Encode(sweepResult{
				Index:   i,
				Request: resolved[i].Req,
				Key:     resolved[i].Key,
				Cached:  c.hit,
				Results: lines,
			})
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}
