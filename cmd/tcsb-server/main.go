// Command tcsb-server is the long-running campaign service: the
// experiment registry and the simulation engine behind an HTTP/JSON
// API, with a content-addressed run cache in front of the fleet.
//
//	tcsb-server -addr :8080 -workers 8 -fleet 2 -cache-entries 256
//
// Endpoints (all under /v1):
//
//	GET  /v1/healthz        liveness + fleet shape
//	GET  /v1/experiments    the experiment catalog (JSON)
//	GET  /v1/experiments/N  one catalog entry
//	GET  /v1/interventions  the counterfactual intervention registry
//	GET  /v1/presets        scale.*, net.* and timeline.* preset families
//	GET  /v1/cache          run-cache counters
//	POST /v1/runs           run (or serve from cache) one campaign; NDJSON
//	POST /v1/sweeps         expand a parameter grid and run the fleet; NDJSON
//	GET  /v1/analyze        longitudinal report over the -archive-dir run archive
//	POST /v1/analyze        same, with an expectations document to alert against
//
// -archive-dir makes the cache durable: every fill persists as a run
// archive (<key>.jsonl plus a manifest of the canonical request), the
// boot path primes the cache from it (a restarted server serves prior
// runs as hits, misses stay 0), and /v1/analyze runs the longitudinal
// analyzer (internal/analyze) over it.
//
// Profiling: -pprof ADDR (e.g. -pprof localhost:6060) serves the
// standard net/http/pprof endpoints (/debug/pprof/...) on a separate
// listener, so heap and CPU profiles of a live fleet can be captured
// without exposing the profiler on the API address. Off by default.
//
// Determinism makes the cache exact: a run's rendered output is a pure
// function of its canonical request, so a warm key returns bytes
// identical to a fresh campaign. Responses carry X-Tcsb-Run-Key (the
// content address) and X-Tcsb-Cache (hit|miss).
//
// Invalid flags exit 2; invalid requests are HTTP 4xx; no input —
// flag or request body — can panic the process. SIGINT/SIGTERM drain
// in-flight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tcsb-server: ")

	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.NumCPU(), "global campaign worker budget, split across the fleet")
	fleet := flag.Int("fleet", 2, "maximum concurrently executing campaigns")
	cacheEntries := flag.Int("cache-entries", 256, "run-cache capacity in stored runs (0 = unbounded)")
	archiveDir := flag.String("archive-dir", "", "run archive directory: persist every cache fill (<key>.jsonl + manifest), prime the cache from it at boot, and enable GET|POST /v1/analyze; empty = disabled")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); empty = disabled")
	flag.Parse()

	// Non-positive shape flags are configuration errors, not requests
	// for a default: exit 2 with a diagnostic, same contract as the CLIs.
	if *workers <= 0 {
		fmt.Fprintf(os.Stderr, "tcsb-server: -workers must be positive (got %d)\n", *workers)
		os.Exit(2)
	}
	if *fleet <= 0 {
		fmt.Fprintf(os.Stderr, "tcsb-server: -fleet must be positive (got %d)\n", *fleet)
		os.Exit(2)
	}
	if *cacheEntries < 0 {
		fmt.Fprintf(os.Stderr, "tcsb-server: -cache-entries must be >= 0 (got %d)\n", *cacheEntries)
		os.Exit(2)
	}

	s := newServer(*fleet, *workers, *cacheEntries, *archiveDir, log.Printf)
	if *archiveDir != "" {
		// Rehydrate the run cache from the archive: a restart serves
		// previously computed campaigns as hits from the first request. A
		// missing directory just means nothing is archived yet; the first
		// cache fill creates it.
		if _, err := os.Stat(*archiveDir); err == nil {
			primed, err := s.primeFromArchive()
			if err != nil {
				fmt.Fprintf(os.Stderr, "tcsb-server: -archive-dir %s: %v\n", *archiveDir, err)
				os.Exit(2)
			}
			log.Printf("primed %d runs from archive %s", primed, *archiveDir)
		}
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	if *pprofAddr != "" {
		// The profiler gets its own mux and listener: the API handler
		// never exposes /debug/pprof, and binding the profiler to
		// localhost keeps it off the service address entirely.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Addr: *pprofAddr, Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof listener: %v", err)
			}
		}()
		log.Printf("pprof on %s", *pprofAddr)
	}
	log.Printf("listening on %s (fleet=%d, workers/run=%d, cache=%d entries)",
		*addr, *fleet, s.perRun, *cacheEntries)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight campaigns finish.
	log.Printf("shutting down; cache %s", s.cache.Stats())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
	}
}
