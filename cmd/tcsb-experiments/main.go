// Command tcsb-experiments regenerates the tables and figures of the
// paper's evaluation from a freshly simulated world. Experiments live in
// the internal/experiments registry; this command only selects, runs and
// renders them. See EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	tcsb-experiments -list
//	tcsb-experiments [-seed N] [-scale F | -preset scale.4x] [-days N]
//	                 [-only fig3,fig13] [-workers N] [-parallel N]
//	                 [-json] [-retain-trace] [-net-profile net.measured]
//	tcsb-experiments -what-if hydra-dissolution[,aws-outage,...]
//	                 [-only whatif.fig8] [-json] [...]
//	tcsb-experiments -what-if attack.sybil-eclipse[,attack.provider-spam,...]
//	                 [-attack-params "band=20;sybils=48"] [...]
//	tcsb-experiments -timeline "epochs=14;@5:hydra-dissolution"
//	                 [-epochs N] [-only timeline.population] [...]
//	tcsb-experiments -timeline timeline.dissolution [-epochs N] [...]
//	tcsb-experiments -timeline timeline.siege [...]
//
// -workers drives the observation campaign (world ticks, crawls,
// provider-record collection) on a bounded goroutine pool; -parallel
// bounds concurrently executing experiments over the finished
// observatory. Both must be positive: a zero or negative pool is a
// configuration error (exit 2), never a silent one-worker fallback.
// -what-if runs a paired campaign instead — a baseline world
// and a world rewritten by the named interventions, sharing the -workers
// pool — and renders the whatif.* delta experiments over the pair.
// -timeline runs a longitudinal campaign: one evolving world stepped
// through a declarative epoch schedule (spec grammar or a timeline.*
// preset name) with population drift and interventions firing at epoch
// boundaries, rendered by the timeline.* experiments with epoch-tagged
// rows; -epochs overrides the schedule's epoch count (alone it means a
// drift-free "epochs=N" schedule). The schedule owns the calendar in
// timeline mode: passing -days alongside -timeline/-epochs is an error
// (exit 2) — use a days= clause in the schedule spec instead.
// The attack.* interventions (adversarial scenarios: sybil eclipse,
// provider-record spam, poisoned gateway stampedes, targeted
// censorship) compose like any other -what-if entry and schedule like
// any other @epoch event; -attack-params tunes their knobs through the
// shared parameter grammar (see internal/attack).
// -net-profile selects the per-link impairment model (net.ideal /
// net.measured / net.degraded, or a raw "pair=delay±jitter,loss=p"
// spec): every RPC, gateway fetch and crawl wave then accrues simulated
// latency and loss, folded into the latency.* experiments' percentile
// sketches. The default (net.ideal) is the exact zero-latency identity.
// The net.* names also compose as interventions: -what-if net.degraded
// pairs ideal vs degraded worlds, and a timeline "@E:net.degraded"
// epoch swaps the model mid-run.
// -preset applies a named scale.* scenario (population/traffic
// multiplier via the Config.Scaled cloning hook); it composes with
// -scale multiplicatively. The observation path streams: vantage-point
// events fold into bounded per-shard statistics as they happen, which is
// what makes scale.4x and beyond routine; -retain-trace additionally
// keeps the raw event logs (gigabytes at default scale — only for
// external tooling that needs events).
// Output on stdout is a deterministic function of the flags and seed:
// for the same selection it is byte-identical for every -workers and
// -parallel value (timings and progress go to stderr). The same
// canonical request also keys cmd/tcsb-server's run cache, so a
// campaign run here is the same content address the service computes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"tcsb/internal/core"
	"tcsb/internal/counterfactual"
	"tcsb/internal/experiments"
	"tcsb/internal/netsim"
	"tcsb/internal/report"
	"tcsb/internal/scenario"
	"tcsb/internal/timeline"
)

// options carries the parsed flag values into buildRequest. explicit
// holds the names of flags the user actually set (flag.Visit), which is
// how timeline mode distinguishes "-days 10 by default" from "-days 10
// on the command line" — the former is ignored in favor of the
// schedule, the latter is a contradiction that must not be swallowed.
type options struct {
	seed         int64
	scale        float64
	preset       string
	netProfile   string
	days         int
	only         string
	whatIf       string
	attackParams string
	timelineSpec string
	epochs       int
	workers      int
	parallel     int
	explicit     map[string]bool
}

// buildRequest validates the flag shape and reduces it to the canonical
// run request. Every rejection here is an exit-2 diagnostic in main;
// the function is pure so the table tests can cover each one.
func buildRequest(o options) (core.RunRequest, error) {
	var req core.RunRequest
	if o.workers <= 0 {
		return req, fmt.Errorf("-workers must be positive (got %d); the pool size never changes the output, so there is no zero-worker mode", o.workers)
	}
	if o.parallel <= 0 {
		return req, fmt.Errorf("-parallel must be positive (got %d)", o.parallel)
	}
	if o.scale <= 0 {
		return req, fmt.Errorf("-scale must be positive (got %g)", o.scale)
	}
	timelineMode := o.timelineSpec != "" || o.epochs > 0
	days := o.days
	if timelineMode {
		if o.explicit["days"] {
			return req, fmt.Errorf("-days is owned by the schedule in timeline mode; use a days= clause in the -timeline spec instead")
		}
		days = 0 // the schedule's calendar applies
	} else if days <= 0 {
		return req, fmt.Errorf("-days must be positive (got %d)", days)
	}
	var only []string
	for _, f := range strings.Split(o.only, ",") {
		if f = strings.TrimSpace(f); f != "" {
			only = append(only, f)
		}
	}
	req = core.RunRequest{
		Seed:         o.seed,
		Scale:        o.scale,
		Preset:       o.preset,
		Days:         days,
		NetProfile:   o.netProfile,
		AttackParams: o.attackParams,
		WhatIf:       o.whatIf,
		Timeline:     o.timelineSpec,
		Epochs:       o.epochs,
		Only:         only,
		Workers:      o.workers,
		Parallel:     o.parallel,
	}
	return req, nil
}

func main() {
	o := options{explicit: make(map[string]bool)}
	flag.Int64Var(&o.seed, "seed", 1, "simulation seed")
	flag.Float64Var(&o.scale, "scale", 1.0, "population scale factor (1.0 ≈ 1/12 of the real network)")
	flag.StringVar(&o.preset, "preset", "", "named scale.* scenario preset (e.g. scale.4x); composes with -scale")
	retain := flag.Bool("retain-trace", false, "retain raw vantage-point event logs alongside the streaming statistics (costs gigabytes at default scale)")
	flag.StringVar(&o.netProfile, "net-profile", "", "per-link impairment model: a net.* preset (net.ideal, net.measured, net.degraded) or a raw spec like \"cloud-cloud=5ms±2;resi-cloud=40ms±15,loss=0.02\"; empty = net.ideal (zero latency)")
	flag.IntVar(&o.days, "days", 10, "observation days (timeline mode: the schedule owns the calendar; setting -days is an error)")
	flag.StringVar(&o.only, "only", "", "comma-separated experiment filter (e.g. table1,fig3,fig13)")
	flag.StringVar(&o.whatIf, "what-if", "", "comma-separated counterfactual interventions (e.g. hydra-dissolution,churn-2x or attack.sybil-eclipse); runs a paired baseline/intervention campaign and the whatif.* delta experiments")
	flag.StringVar(&o.attackParams, "attack-params", "", "attack.* parameter overrides (e.g. \"band=20;sybils=48;spam=100\"); tunes any attack interventions named by -what-if or a -timeline schedule")
	flag.StringVar(&o.timelineSpec, "timeline", "", "epoch schedule (e.g. \"epochs=14;@5:hydra-dissolution\") or a timeline.* preset name; runs a longitudinal campaign and the timeline.* experiments")
	flag.IntVar(&o.epochs, "epochs", 0, "override the -timeline schedule's epoch count (alone: a drift-free epochs=N schedule)")
	flag.IntVar(&o.workers, "workers", runtime.NumCPU(), "goroutine pool size for the observation campaign (output is identical for every value; must be positive)")
	flag.IntVar(&o.parallel, "parallel", runtime.NumCPU(), "max experiments executed concurrently (must be positive)")
	jsonOut := flag.Bool("json", false, "emit JSONL (one JSON object per table) instead of text tables")
	list := flag.Bool("list", false, "list registered experiments and interventions, then exit")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) { o.explicit[f.Name] = true })

	if *list {
		fmt.Println(experiments.ListTable())
		fmt.Println()
		fmt.Println(interventionList())
		fmt.Println()
		fmt.Println(presetList())
		fmt.Println()
		fmt.Println(netPresetList())
		fmt.Println()
		fmt.Println(timelinePresetList())
		return
	}

	req, err := buildRequest(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcsb-experiments:", err)
		os.Exit(2)
	}
	// Resolve validates the request against every registry (experiments,
	// interventions, presets, grammars) before any simulation is paid
	// for; invalid input is a diagnostic, never a panic.
	res, err := experiments.Resolve(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcsb-experiments:", err)
		os.Exit(2)
	}
	res.RC.RetainTrace = *retain

	progress := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	results, err := res.Execute(progress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcsb-experiments:", err)
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr)

	render := experiments.RenderText
	if *jsonOut {
		render = experiments.RenderJSONL
	}
	if err := render(os.Stdout, results); err != nil {
		fmt.Fprintln(os.Stderr, "tcsb-experiments:", err)
		os.Exit(1)
	}
}

// interventionList renders the counterfactual catalog for -list.
func interventionList() *report.Table {
	t := &report.Table{
		Title:   "Named interventions (-what-if, comma-composable)",
		Columns: []string{"name", "description"},
	}
	for _, iv := range counterfactual.All() {
		t.AddRow(iv.Name, iv.Description)
	}
	return t
}

// presetList renders the scale.* scenario family for -list.
func presetList() *report.Table {
	t := &report.Table{
		Title:   "Scale presets (-preset; streaming observation keeps them memory-feasible)",
		Columns: []string{"name", "description"},
	}
	for _, p := range scenario.ScalePresets() {
		t.AddRow(p.Name, p.Description)
	}
	return t
}

// netPresetList renders the net.* link-profile family for -list.
func netPresetList() *report.Table {
	t := &report.Table{
		Title:   "Network profiles (-net-profile; also -what-if / @epoch composable as net.*)",
		Columns: []string{"name", "spec", "description"},
	}
	for _, p := range netsim.LinkPresets() {
		t.AddRow(p.Name, p.Spec, p.Description)
	}
	return t
}

// timelinePresetList renders the timeline.* schedule family for -list.
func timelinePresetList() *report.Table {
	t := &report.Table{
		Title:   "Timeline presets (-timeline; or pass a schedule spec directly)",
		Columns: []string{"name", "schedule", "description"},
	}
	for _, p := range timeline.Presets() {
		t.AddRow(p.Name, p.Spec, p.Description)
	}
	return t
}
