// Command tcsb-experiments regenerates every table and figure of the
// paper's evaluation from a freshly simulated world, printing the same
// rows/series the paper reports. See EXPERIMENTS.md for the
// paper-vs-measured record.
//
// Usage:
//
//	tcsb-experiments [-seed N] [-scale F] [-days N] [-only fig13]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"tcsb/internal/analysis"
	"tcsb/internal/core"
	"tcsb/internal/report"
	"tcsb/internal/scenario"
	"tcsb/internal/stats"
	"tcsb/internal/trace"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	scale := flag.Float64("scale", 1.0, "population scale factor (1.0 ≈ 1/12 of the real network)")
	days := flag.Int("days", 10, "observation days")
	only := flag.String("only", "", "comma-separated experiment filter (e.g. table1,fig3,fig13)")
	flag.Parse()

	filter := map[string]bool{}
	for _, f := range strings.Split(*only, ",") {
		if f = strings.TrimSpace(strings.ToLower(f)); f != "" {
			filter[f] = true
		}
	}
	want := func(name string) bool { return len(filter) == 0 || filter[name] }

	cfg := scenario.DefaultConfig().Scaled(*scale)
	cfg.Seed = *seed
	rc := core.DefaultRunConfig()
	rc.Days = *days

	fmt.Fprintf(os.Stderr, "building world (%d servers, %d NAT clients) and observing %d days...\n",
		cfg.Servers, cfg.NATClients, rc.Days)
	start := time.Now()
	o := core.Observe(cfg, rc)
	fmt.Fprintf(os.Stderr, "observation complete in %v (%d total RPCs)\n\n",
		time.Since(start).Round(time.Millisecond), o.World.Net.TotalMessages())

	if want("table1") {
		printTable1()
	}
	if want("section3") {
		printSection3(o)
	}
	if want("fig3") {
		printFig3(o)
	}
	if want("fig4") {
		printFig4(o)
	}
	if want("fig5") {
		printFig5(o)
	}
	if want("fig6") {
		printFig6(o)
	}
	if want("fig7") {
		printFig7(o)
	}
	if want("churn") {
		printChurn(o)
	}
	if want("fig8") {
		printFig8(o)
	}
	if want("section5") {
		printSection5(o)
	}
	if want("fig9") {
		printFig9(o)
	}
	if want("fig10") {
		printFig10(o)
	}
	if want("fig11") {
		printFig11(o)
	}
	if want("fig12") {
		printFig12(o)
	}
	if want("fig13") {
		printFig13(o)
	}
	if want("fig14") {
		printFig14(o)
	}
	if want("fig15") {
		printFig15(o)
	}
	if want("fig16") {
		printFig16(o)
	}
	if want("fig17") {
		printFig17(o)
	}
	if want("fig18") {
		printFig18(o)
	}
	if want("fig19") {
		printFig19(o)
	}
	if want("fig20") {
		printFig20(o)
	}
}

func printTable1() {
	r := core.Table1()
	t := &report.Table{
		Title:   "Table 1 — counting methodologies on the example dataset",
		Columns: []string{"methodology", "DE", "US"},
	}
	t.AddRow("G-IP (paper: DE=2, US=2)", r.GIP["DE"], r.GIP["US"])
	t.AddRow("A-N  (paper: DE=0.5, US=1)", r.AN["DE"], r.AN["US"])
	fmt.Println(t)
}

func printSection3(o *core.Observatory) {
	s := o.Section3()
	t := &report.Table{
		Title:   "Section 3 — crawl dataset shape (paper at 12x scale: 25771.6 disc / 17991.4 crawlable / 53898 peers / 86064 IPs / 1.82 IP-per-peer)",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("crawls", s.Crawls)
	t.AddRow("mean discovered/crawl", fmt.Sprintf("%.1f", s.MeanDiscovered))
	t.AddRow("mean crawlable/crawl", fmt.Sprintf("%.1f", s.MeanCrawlable))
	t.AddRow("unique peer IDs", s.UniquePeers)
	t.AddRow("unique IPs", s.UniqueIPs)
	t.AddRow("mean IPs per peer", fmt.Sprintf("%.2f", s.MeanIPsPerPeer))
	t.AddRow("modeled crawl duration (s)", fmt.Sprintf("%.1f", s.MeanModeledDur))
	fmt.Println(t)
}

func printFig3(o *core.Observatory) {
	r := o.Fig3CloudStatus()
	agg := func(m map[string]float64) (cloud, non, both float64) {
		for k, v := range m {
			switch k {
			case "non-cloud":
				non += v
			case "BOTH":
				both += v
			default:
				cloud += v
			}
		}
		return
	}
	t := &report.Table{
		Title:   "Fig 3 — DHT participants by cloud status (paper: A-N 79.6% cloud / 18.6% non-cloud; G-IP 39.9% / 60.1%)",
		Columns: []string{"methodology", "cloud", "non-cloud", "BOTH"},
	}
	c, n, b := agg(r.ANShares)
	t.AddRow("A-N", report.Pct(c), report.Pct(n), report.Pct(b))
	c, n, b = agg(r.GIPShares)
	t.AddRow("G-IP", report.Pct(c), report.Pct(n), report.Pct(b))
	fmt.Println(t)
}

func printFig4(o *core.Observatory) {
	r := o.Fig4Cumulative()
	t := &report.Table{
		Title:   "Fig 4 — cloud share vs cumulative crawls (paper: A-N steady, G-IP declining)",
		Columns: []string{"crawls", "A-N cloud share", "G-IP cloud share"},
	}
	for i := range r.AN {
		if (i+1)%2 == 0 || i == 0 || i == len(r.AN)-1 {
			t.AddRow(fmt.Sprintf("%d", r.AN[i].Crawls), report.Pct(r.AN[i].Value), report.Pct(r.GIP[i].Value))
		}
	}
	fmt.Println(t)
}

func printFig5(o *core.Observatory) {
	r := o.Fig5CloudProviders()
	for _, tbl := range core.RenderDist("Fig 5 — nodes by cloud provider (paper A-N: choopa 29.3%, top-3 51.9%; G-IP choopa 13.8%)", r) {
		fmt.Println(topN(tbl, 12))
	}
	fmt.Printf("top-3 provider share (A-N, excl. non-cloud/BOTH): %s\n\n",
		report.Pct(core.TopNShare(r.AN, 3, "non-cloud", "BOTH")))
}

func printFig6(o *core.Observatory) {
	r := o.Fig6Geolocation()
	for _, tbl := range core.RenderDist("Fig 6 — nodes by country (paper A-N: US 47.4%, DE 13.7%, KR 5.2%, non-top-10 13.3%)", r) {
		fmt.Println(topN(tbl, 12))
	}
}

func printFig7(o *core.Observatory) {
	r := o.Fig7Degrees()
	t := &report.Table{
		Title:   "Fig 7 — degree distribution (paper: out-degree in a tight band; in-degree p90 < ~500 with heavy tail)",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("out-degree p10", fmt.Sprintf("%.0f", r.OutP10))
	t.AddRow("out-degree p90", fmt.Sprintf("%.0f", r.OutP90))
	t.AddRow("in-degree p90", fmt.Sprintf("%.0f", r.InP90))
	t.AddRow("in-degree max", fmt.Sprintf("%.0f", r.MaxIn))
	fmt.Println(t)
}

func printChurn(o *core.Observatory) {
	r := o.SectionChurn()
	t := &report.Table{
		Title:   "Section 4 — peer liveness by cloud status (paper: non-cloud nodes short-lived, IP-rotating)",
		Columns: []string{"group", "peers", "mean uptime", "median sessions", "mean IPs/peer"},
	}
	for _, g := range r.Groups {
		t.AddRow(g.Group, g.Peers, report.Pct(g.MeanUptime),
			fmt.Sprintf("%.1f", g.MedianSessions), fmt.Sprintf("%.2f", g.MeanIPs))
	}
	fmt.Println(t)
}

func printFig8(o *core.Observatory) {
	r := o.Fig8Resilience()
	t := &report.Table{
		Title:   "Fig 8 — resilience to node removal (paper: random 96% largest CC at 90% removed; targeted full partition at ~60%)",
		Columns: []string{"removed", "random mean", "±95% CI", "targeted"},
	}
	for i, f := range r.Fractions {
		t.AddRow(report.Pct(f), report.Pct(r.RandomMean[i]),
			fmt.Sprintf("%.3f", r.RandomCI95[i]), report.Pct(r.Targeted[i]))
	}
	fmt.Println(t)
	fmt.Printf("targeted full partition at: %s of nodes removed\n\n", report.Pct(r.FullPartitionAt))
}

func printSection5(o *core.Observatory) {
	mix := o.Section5Mix()
	t := &report.Table{
		Title:   "Section 5 — DHT traffic mix at the Hydra vantage (paper: 57% download, 40% advertise, 3% other)",
		Columns: []string{"class", "share"},
	}
	for _, cl := range []trace.Class{trace.Download, trace.Advertise, trace.Other} {
		t.AddRow(cl.String(), report.Pct(mix[cl]))
	}
	fmt.Println(t)
}

func printFig9(o *core.Observatory) {
	r := o.Fig9Frequency()
	t := &report.Table{
		Title:   "Fig 9 — identifier frequency in days seen (paper: most CIDs 1-3 days; IPs and peer IDs mostly short-lived)",
		Columns: []string{"identifier", "seen <=3 days", "distinct"},
	}
	count := func(h map[int]int) int {
		n := 0
		for _, v := range h {
			n += v
		}
		return n
	}
	t.AddRow("CID", report.Pct(core.ShortLivedShare(r.CIDDays, 3)), count(r.CIDDays))
	t.AddRow("IP", report.Pct(core.ShortLivedShare(r.IPDays, 3)), count(r.IPDays))
	t.AddRow("peerID", report.Pct(core.ShortLivedShare(r.PeerDays, 3)), count(r.PeerDays))
	fmt.Println(t)
}

func printPareto(title string, r core.ParetoResult, groups []string) {
	t := &report.Table{Title: title, Columns: []string{"metric", "value"}}
	t.AddRow("top 5% traffic share", report.Pct(r.Top5Share))
	for _, g := range groups {
		t.AddRow("traffic share: "+g, report.Pct(r.GroupTraffic[g]))
		t.AddRow("member share: "+g, report.Pct(r.GroupMembers[g]))
	}
	fmt.Println(t)
}

func printFig10(o *core.Observatory) {
	dht, bs := o.Fig10PeerPareto()
	printPareto("Fig 10a — DHT peerID Pareto (paper: top 5% ≈ 97% of traffic; gateway share ≈1%)",
		dht, []string{"gateway", "non-gateway"})
	printPareto("Fig 10b — Bitswap peerID Pareto (paper: gateway share ≈18%)",
		bs, []string{"gateway", "non-gateway"})
}

func printFig11(o *core.Observatory) {
	dht, bs := o.Fig11IPPareto()
	printPareto("Fig 11a — DHT IP Pareto (paper: top 5% ≈ 94%; cloud ≈85% of traffic)",
		dht, []string{"cloud", "non-cloud"})
	printPareto("Fig 11b — Bitswap IP Pareto (paper: cloud ≈42% of traffic)",
		bs, []string{"cloud", "non-cloud"})
}

func printFig12(o *core.Observatory) {
	r := o.Fig12CloudPerTrafficType()
	fmt.Printf("Fig 12 — cloud per traffic type (paper: ~35%% of IPs cloud, ~93%% of traffic cloud; AWS 68%% of download traffic)\n")
	fmt.Printf("  cloud share by unique IPs:  %s\n", report.Pct(r.CloudByCount))
	fmt.Printf("  cloud share by traffic:     %s\n\n", report.Pct(r.CloudByTraffic))
	for _, cl := range []trace.Class{trace.Download, trace.Advertise} {
		fmt.Println(topN(report.SharesTable(
			fmt.Sprintf("Fig 12 — providers by unique IPs (%s)", cl), "provider", r.UniqueIPShares[cl]), 8))
		fmt.Println(topN(report.SharesTable(
			fmt.Sprintf("Fig 12 — providers by traffic volume (%s)", cl), "provider", r.TrafficShares[cl]), 8))
	}
}

func printFig13(o *core.Observatory) {
	r := o.Fig13Platforms()
	fmt.Println(topN(report.SharesTable("Fig 13 — platforms, all DHT traffic (paper: hydra 35%)", "platform", r.DHTAll), 10))
	fmt.Println(topN(report.SharesTable("Fig 13 — platforms, DHT download traffic (paper: hydra 50%)", "platform", r.DHTDownload), 10))
	fmt.Println(topN(report.SharesTable("Fig 13 — platforms, DHT advertise traffic (paper: web3/nft.storage dominate)", "platform", r.DHTAdvertise), 10))
	fmt.Println(topN(report.SharesTable("Fig 13 — platforms, Bitswap traffic (paper: ipfs-bank dominates)", "platform", r.Bitswap), 10))
}

func printFig14(o *core.Observatory) {
	shares, relayCloud := o.Fig14ProviderClass()
	t := &report.Table{
		Title:   "Fig 14 — provider classification (paper: NAT-ed 35.6%, cloud 45%, non-cloud 18%, hybrid 0.6%; ~80% of relays cloud)",
		Columns: []string{"class", "share"},
	}
	for _, cl := range []analysis.Class{analysis.NATed, analysis.CloudBased, analysis.NonCloudBased, analysis.Hybrid} {
		t.AddRow(cl.String(), report.Pct(shares[cl]))
	}
	fmt.Println(t)
	fmt.Printf("NAT-ed providers using cloud relays: %s\n\n", report.Pct(relayCloud))
}

func printFig15(o *core.Observatory) {
	pareto, classShares := o.Fig15ProviderPopularity()
	fmt.Println(report.CurveTable(
		"Fig 15 — provider popularity Pareto (paper: top 1% of peers in ~90% of records)",
		pareto, []float64{0.01, 0.05, 0.10, 0.25, 0.50}))
	t := &report.Table{
		Title:   "Fig 15 — record appearances by provider class (paper: cloud 70%, non-cloud 22%, NAT-ed <8%)",
		Columns: []string{"class", "share of appearances"},
	}
	for _, cl := range []analysis.Class{analysis.CloudBased, analysis.NonCloudBased, analysis.NATed, analysis.Hybrid} {
		t.AddRow(cl.String(), report.Pct(classShares[cl]))
	}
	fmt.Println(t)
}

func printFig16(o *core.Observatory) {
	r := o.Fig16ContentCloud()
	t := &report.Table{
		Title:   "Fig 16 — CIDs by cloud reliance (paper: ≥1 cloud 95%, ≥half 91%, only-cloud 23%, ≥1 non-cloud 77%)",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("CIDs with providers", r.CIDs)
	t.AddRow(">=1 cloud provider", report.Pct(r.AtLeastOneCloud))
	t.AddRow(">=half cloud providers", report.Pct(r.MajorityCloud))
	t.AddRow("only cloud providers", report.Pct(r.OnlyCloud))
	t.AddRow(">=1 non-cloud provider", report.Pct(r.AtLeastOneNonCloud))
	fmt.Println(t)
}

func printFig17(o *core.Observatory) {
	r := o.Fig17DNSLink()
	fmt.Println(topN(report.SharesTable(
		"Fig 17a — DNSLink fronting IPs by provider (paper: cloudflare ~50%, non-cloud ~20%)",
		"provider", r.ByProvider), 8))
	fmt.Println(topN(report.SharesTable(
		"Fig 17b — DNSLink domains by gateway (paper: non-gateway plurality, then cloudflare-ipfs.com)",
		"gateway", r.ByGateway), 8))
	fmt.Printf("DNSLink domains found: %d; share pointing at public gateways: %s\n\n",
		r.Domains, report.Pct(r.GatewayIPShare))
}

func printFig18(o *core.Observatory) {
	r := o.Fig18GatewayProviders()
	fmt.Println(topN(report.SharesTable("Fig 18 — gateway frontend IPs by provider (paper: cloudflare dominates)", "provider", r.Frontend), 8))
	fmt.Println(topN(report.SharesTable("Fig 18 — gateway overlay IPs by provider", "provider", r.Overlay), 8))
}

func printFig19(o *core.Observatory) {
	r := o.Fig19GatewayGeo()
	fmt.Println(topN(report.SharesTable("Fig 19 — gateway frontend IPs by country (paper: US+DE majority)", "country", r.Frontend), 8))
	fmt.Println(topN(report.SharesTable("Fig 19 — gateway overlay IPs by country", "country", r.Overlay), 8))
}

func printFig20(o *core.Observatory) {
	r := o.Fig20ENS()
	fmt.Println(topN(report.SharesTable("Fig 20a — ENS content providers (paper: 82% cloud; choopa/vultr/contabo lead)", "provider", r.ByProvider), 8))
	fmt.Println(topN(report.SharesTable("Fig 20b — ENS content provider countries (paper: US+DE ~60%)", "country", r.ByCountry), 8))
	fmt.Printf("ENS records: %d; resolved CIDs: %d; unique provider IPs: %d; cloud share: %s\n\n",
		r.Records, r.ResolvedCID, r.UniqueIPs, report.Pct(r.CloudShare))
}

// topN truncates a shares table to its n largest rows plus an "other"
// aggregate for readability.
func topN(t *report.Table, n int) *report.Table {
	if len(t.Rows) <= n {
		return t
	}
	rows := append([][]string(nil), t.Rows...)
	sort.SliceStable(rows, func(i, j int) bool { return false }) // already sorted by SharesTable
	out := &report.Table{Title: t.Title, Columns: t.Columns}
	out.Rows = rows[:n]
	out.AddRow("(+ smaller)", fmt.Sprintf("%d rows", len(rows)-n))
	return out
}

var _ = stats.Pareto // keep stats linked for future extensions
