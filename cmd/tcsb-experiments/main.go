// Command tcsb-experiments regenerates the tables and figures of the
// paper's evaluation from a freshly simulated world. Experiments live in
// the internal/experiments registry; this command only selects, runs and
// renders them. See EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	tcsb-experiments -list
//	tcsb-experiments [-seed N] [-scale F | -preset scale.4x] [-days N]
//	                 [-only fig3,fig13] [-workers N] [-parallel N]
//	                 [-json] [-retain-trace] [-net-profile net.measured]
//	tcsb-experiments -what-if hydra-dissolution[,aws-outage,...]
//	                 [-only whatif.fig8] [-json] [...]
//	tcsb-experiments -what-if attack.sybil-eclipse[,attack.provider-spam,...]
//	                 [-attack-params "band=20;sybils=48"] [...]
//	tcsb-experiments -timeline "epochs=14;@5:hydra-dissolution"
//	                 [-epochs N] [-only timeline.population] [...]
//	tcsb-experiments -timeline timeline.dissolution [-epochs N] [...]
//	tcsb-experiments -timeline timeline.siege [...]
//
// -workers drives the observation campaign (world ticks, crawls,
// provider-record collection) on a bounded goroutine pool; -parallel
// bounds concurrently executing experiments over the finished
// observatory. -what-if runs a paired campaign instead — a baseline world
// and a world rewritten by the named interventions, sharing the -workers
// pool — and renders the whatif.* delta experiments over the pair.
// -timeline runs a longitudinal campaign: one evolving world stepped
// through a declarative epoch schedule (spec grammar or a timeline.*
// preset name) with population drift and interventions firing at epoch
// boundaries, rendered by the timeline.* experiments with epoch-tagged
// rows; -epochs overrides the schedule's epoch count (alone it means a
// drift-free "epochs=N" schedule). -days is ignored in timeline mode —
// the schedule owns the calendar.
// The attack.* interventions (adversarial scenarios: sybil eclipse,
// provider-record spam, poisoned gateway stampedes, targeted
// censorship) compose like any other -what-if entry and schedule like
// any other @epoch event; -attack-params tunes their knobs through the
// shared parameter grammar (see internal/attack).
// -net-profile selects the per-link impairment model (net.ideal /
// net.measured / net.degraded, or a raw "pair=delay±jitter,loss=p"
// spec): every RPC, gateway fetch and crawl wave then accrues simulated
// latency and loss, folded into the latency.* experiments' percentile
// sketches. The default (net.ideal) is the exact zero-latency identity.
// The net.* names also compose as interventions: -what-if net.degraded
// pairs ideal vs degraded worlds, and a timeline "@E:net.degraded"
// epoch swaps the model mid-run.
// -preset applies a named scale.* scenario (population/traffic
// multiplier via the Config.Scaled cloning hook); it composes with
// -scale multiplicatively. The observation path streams: vantage-point
// events fold into bounded per-shard statistics as they happen, which is
// what makes scale.4x and beyond routine; -retain-trace additionally
// keeps the raw event logs (gigabytes at default scale — only for
// external tooling that needs events).
// Output on stdout is a deterministic function of the flags and seed:
// for the same selection it is byte-identical for every -workers and
// -parallel value (timings and progress go to stderr).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"tcsb/internal/attack"
	"tcsb/internal/core"
	"tcsb/internal/counterfactual"
	"tcsb/internal/experiments"
	"tcsb/internal/netsim"
	"tcsb/internal/report"
	"tcsb/internal/scenario"
	"tcsb/internal/timeline"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	scale := flag.Float64("scale", 1.0, "population scale factor (1.0 ≈ 1/12 of the real network)")
	preset := flag.String("preset", "", "named scale.* scenario preset (e.g. scale.4x); composes with -scale")
	retain := flag.Bool("retain-trace", false, "retain raw vantage-point event logs alongside the streaming statistics (costs gigabytes at default scale)")
	netProfile := flag.String("net-profile", "", "per-link impairment model: a net.* preset (net.ideal, net.measured, net.degraded) or a raw spec like \"cloud-cloud=5ms±2;resi-cloud=40ms±15,loss=0.02\"; empty = net.ideal (zero latency)")
	days := flag.Int("days", 10, "observation days")
	only := flag.String("only", "", "comma-separated experiment filter (e.g. table1,fig3,fig13)")
	whatIf := flag.String("what-if", "", "comma-separated counterfactual interventions (e.g. hydra-dissolution,churn-2x or attack.sybil-eclipse); runs a paired baseline/intervention campaign and the whatif.* delta experiments")
	attackParams := flag.String("attack-params", "", "attack.* parameter overrides (e.g. \"band=20;sybils=48;spam=100\"); tunes any attack interventions named by -what-if or a -timeline schedule")
	timelineSpec := flag.String("timeline", "", "epoch schedule (e.g. \"epochs=14;@5:hydra-dissolution\") or a timeline.* preset name; runs a longitudinal campaign and the timeline.* experiments")
	epochs := flag.Int("epochs", 0, "override the -timeline schedule's epoch count (alone: a drift-free epochs=N schedule)")
	workers := flag.Int("workers", runtime.NumCPU(), "goroutine pool size for the observation campaign (output is identical for every value)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "max experiments executed concurrently")
	jsonOut := flag.Bool("json", false, "emit JSONL (one JSON object per table) instead of text tables")
	list := flag.Bool("list", false, "list registered experiments and interventions, then exit")
	flag.Parse()

	if *list {
		fmt.Println(experiments.ListTable())
		fmt.Println()
		fmt.Println(interventionList())
		fmt.Println()
		fmt.Println(presetList())
		fmt.Println()
		fmt.Println(netPresetList())
		fmt.Println()
		fmt.Println(timelinePresetList())
		return
	}

	var names []string
	for _, f := range strings.Split(*only, ",") {
		if f = strings.TrimSpace(strings.ToLower(f)); f != "" {
			names = append(names, f)
		}
	}
	var interventions []counterfactual.Intervention
	if *whatIf != "" {
		var err error
		if interventions, err = counterfactual.Parse(*whatIf); err != nil {
			fmt.Fprintln(os.Stderr, "tcsb-experiments:", err)
			os.Exit(2)
		}
	}
	// Timeline mode: resolve a preset name or parse the spec grammar,
	// apply the -epochs override, and compile against the intervention
	// registry — all before paying for any simulation.
	var schedule *timeline.Compiled
	if *timelineSpec != "" || *epochs > 0 {
		if len(interventions) > 0 {
			fmt.Fprintln(os.Stderr, "tcsb-experiments: -timeline and -what-if are mutually exclusive (a schedule can fire interventions at epochs)")
			os.Exit(2)
		}
		spec := *timelineSpec
		if p, ok := timeline.LookupPreset(spec); ok {
			spec = p.Spec
		}
		if spec == "" {
			spec = fmt.Sprintf("epochs=%d", *epochs)
		}
		sch, err := timeline.Parse(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcsb-experiments:", err)
			os.Exit(2)
		}
		if *epochs > 0 {
			sch.Epochs = *epochs
			if err := sch.Validate(); err != nil {
				fmt.Fprintln(os.Stderr, "tcsb-experiments: -epochs override:", err)
				os.Exit(2)
			}
		}
		if schedule, err = sch.Compile(counterfactual.ScheduleResolver()); err != nil {
			fmt.Fprintln(os.Stderr, "tcsb-experiments:", err)
			os.Exit(2)
		}
	}
	// Validate the selection — against the mode actually requested — before
	// paying for the simulation.
	mode := experiments.ModeRun
	switch {
	case len(interventions) > 0:
		mode = experiments.ModeDelta
	case schedule != nil:
		mode = experiments.ModeTimeline
	}
	if _, err := experiments.SelectFor(names, mode); err != nil {
		fmt.Fprintln(os.Stderr, "tcsb-experiments:", err)
		os.Exit(2)
	}

	cfg := scenario.DefaultConfig().Scaled(*scale)
	if *preset != "" {
		p, ok := scenario.LookupScale(*preset)
		if !ok {
			fmt.Fprintf(os.Stderr, "tcsb-experiments: unknown preset %q; -list shows the scale.* family\n", *preset)
			os.Exit(2)
		}
		cfg = p.Apply(cfg)
	}
	if *attackParams != "" {
		p, err := attack.Parse(*attackParams)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcsb-experiments: -attack-params:", err)
			os.Exit(2)
		}
		p.Apply(&cfg)
	}
	if *netProfile != "" {
		// Validate before paying for the simulation; world construction
		// treats an invalid profile as a programming error.
		if _, err := netsim.ResolveLinkProfile(*netProfile); err != nil {
			fmt.Fprintln(os.Stderr, "tcsb-experiments: -net-profile:", err)
			os.Exit(2)
		}
		cfg.NetProfile = *netProfile
	}
	cfg.Seed = *seed
	rc := core.DefaultRunConfig()
	rc.Days = *days
	rc.Workers = *workers
	rc.RetainTrace = *retain

	var results []experiments.Result
	var err error
	if schedule != nil {
		s := schedule.Schedule()
		fmt.Fprintf(os.Stderr, "building world (%d servers, %d NAT clients) and running %d epochs × %d days, schedule %s (workers=%d)...\n",
			cfg.Servers, cfg.NATClients, s.Epochs, s.DaysPerEpoch, schedule.Spec(), rc.Workers)
		start := time.Now()
		tr := core.RunTimeline(cfg, rc, schedule)
		fmt.Fprintf(os.Stderr, "timeline complete in %v (%d total RPCs)\n",
			time.Since(start).Round(time.Millisecond), tr.World.Net.TotalMessages())

		runStart := time.Now()
		results, err = experiments.RunTimeline(tr, names, *parallel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcsb-experiments:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "%d timeline experiments in %v (parallel=%d)\n\n",
			len(results), time.Since(runStart).Round(time.Millisecond), *parallel)
	} else if len(interventions) > 0 {
		spec := counterfactual.Spec(interventions)
		fmt.Fprintf(os.Stderr, "building paired worlds (%d servers, %d NAT clients), what-if %s, observing %d days each (workers=%d)...\n",
			cfg.Servers, cfg.NATClients, spec, rc.Days, rc.Workers)
		start := time.Now()
		baseline, whatif := counterfactual.Observe(cfg, rc, interventions)
		fmt.Fprintf(os.Stderr, "paired observation complete in %v (%d + %d total RPCs)\n",
			time.Since(start).Round(time.Millisecond),
			baseline.World.Net.TotalMessages(), whatif.World.Net.TotalMessages())

		runStart := time.Now()
		results, err = experiments.RunPaired(baseline, whatif,
			counterfactual.NamesOf(interventions), names, *parallel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcsb-experiments:", err)
			os.Exit(2)
		}
		// results[0] is the applied-interventions header, not an experiment.
		fmt.Fprintf(os.Stderr, "%d delta experiments in %v (parallel=%d)\n\n",
			len(results)-1, time.Since(runStart).Round(time.Millisecond), *parallel)
	} else {
		fmt.Fprintf(os.Stderr, "building world (%d servers, %d NAT clients) and observing %d days (workers=%d)...\n",
			cfg.Servers, cfg.NATClients, rc.Days, rc.Workers)
		start := time.Now()
		o := core.Observe(cfg, rc)
		fmt.Fprintf(os.Stderr, "observation complete in %v (%d total RPCs)\n",
			time.Since(start).Round(time.Millisecond), o.World.Net.TotalMessages())

		runStart := time.Now()
		results, err = experiments.Run(o, names, *parallel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcsb-experiments:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "%d experiments in %v (parallel=%d)\n\n",
			len(results), time.Since(runStart).Round(time.Millisecond), *parallel)
	}

	render := experiments.RenderText
	if *jsonOut {
		render = experiments.RenderJSONL
	}
	if err := render(os.Stdout, results); err != nil {
		fmt.Fprintln(os.Stderr, "tcsb-experiments:", err)
		os.Exit(1)
	}
}

// interventionList renders the counterfactual catalog for -list.
func interventionList() *report.Table {
	t := &report.Table{
		Title:   "Named interventions (-what-if, comma-composable)",
		Columns: []string{"name", "description"},
	}
	for _, iv := range counterfactual.All() {
		t.AddRow(iv.Name, iv.Description)
	}
	return t
}

// presetList renders the scale.* scenario family for -list.
func presetList() *report.Table {
	t := &report.Table{
		Title:   "Scale presets (-preset; streaming observation keeps them memory-feasible)",
		Columns: []string{"name", "description"},
	}
	for _, p := range scenario.ScalePresets() {
		t.AddRow(p.Name, p.Description)
	}
	return t
}

// netPresetList renders the net.* link-profile family for -list.
func netPresetList() *report.Table {
	t := &report.Table{
		Title:   "Network profiles (-net-profile; also -what-if / @epoch composable as net.*)",
		Columns: []string{"name", "spec", "description"},
	}
	for _, p := range netsim.LinkPresets() {
		t.AddRow(p.Name, p.Spec, p.Description)
	}
	return t
}

// timelinePresetList renders the timeline.* schedule family for -list.
func timelinePresetList() *report.Table {
	t := &report.Table{
		Title:   "Timeline presets (-timeline; or pass a schedule spec directly)",
		Columns: []string{"name", "schedule", "description"},
	}
	for _, p := range timeline.Presets() {
		t.AddRow(p.Name, p.Spec, p.Description)
	}
	return t
}
