// Command tcsb-experiments regenerates the tables and figures of the
// paper's evaluation from a freshly simulated world. Experiments live in
// the internal/experiments registry; this command only selects, runs and
// renders them. See EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	tcsb-experiments -list
//	tcsb-experiments [-seed N] [-scale F | -preset scale.4x] [-days N]
//	                 [-only fig3,fig13] [-workers N] [-parallel N]
//	                 [-json] [-retain-trace] [-net-profile net.measured]
//	tcsb-experiments -what-if hydra-dissolution[,aws-outage,...]
//	                 [-only whatif.fig8] [-json] [...]
//	tcsb-experiments -what-if attack.sybil-eclipse[,attack.provider-spam,...]
//	                 [-attack-params "band=20;sybils=48"] [...]
//	tcsb-experiments -timeline "epochs=14;@5:hydra-dissolution"
//	                 [-epochs N] [-only timeline.population] [...]
//	tcsb-experiments -timeline timeline.dissolution [-epochs N] [...]
//	tcsb-experiments -timeline timeline.siege [...]
//	tcsb-experiments [...] -archive-dir runs/
//	tcsb-experiments -analyze -archive-dir runs/
//	                 [-expectations expectations.json] [-json]
//
// -workers drives the observation campaign (world ticks, crawls,
// provider-record collection) on a bounded goroutine pool; -parallel
// bounds concurrently executing experiments over the finished
// observatory. Both must be positive: a zero or negative pool is a
// configuration error (exit 2), never a silent one-worker fallback.
// -what-if runs a paired campaign instead — a baseline world
// and a world rewritten by the named interventions, sharing the -workers
// pool — and renders the whatif.* delta experiments over the pair.
// -timeline runs a longitudinal campaign: one evolving world stepped
// through a declarative epoch schedule (spec grammar or a timeline.*
// preset name) with population drift and interventions firing at epoch
// boundaries, rendered by the timeline.* experiments with epoch-tagged
// rows; -epochs overrides the schedule's epoch count (alone it means a
// drift-free "epochs=N" schedule). The schedule owns the calendar in
// timeline mode: passing -days alongside -timeline/-epochs is an error
// (exit 2) — use a days= clause in the schedule spec instead.
// The attack.* interventions (adversarial scenarios: sybil eclipse,
// provider-record spam, poisoned gateway stampedes, targeted
// censorship) compose like any other -what-if entry and schedule like
// any other @epoch event; -attack-params tunes their knobs through the
// shared parameter grammar (see internal/attack).
// -net-profile selects the per-link impairment model (net.ideal /
// net.measured / net.degraded, or a raw "pair=delay±jitter,loss=p"
// spec): every RPC, gateway fetch and crawl wave then accrues simulated
// latency and loss, folded into the latency.* experiments' percentile
// sketches. The default (net.ideal) is the exact zero-latency identity.
// The net.* names also compose as interventions: -what-if net.degraded
// pairs ideal vs degraded worlds, and a timeline "@E:net.degraded"
// epoch swaps the model mid-run.
// -preset applies a named scale.* scenario (population/traffic
// multiplier via the Config.Scaled cloning hook); it composes with
// -scale multiplicatively. The observation path streams: vantage-point
// events fold into bounded per-shard statistics as they happen, which is
// what makes scale.4x and beyond routine; -retain-trace additionally
// keeps the raw event logs (gigabytes at default scale — only for
// external tooling that needs events).
// -archive-dir persists each campaign run — the JSONL byte stream plus
// a manifest of the canonical request — into a run archive;
// -analyze is the analyze-only mode: it runs no simulation, ingests the
// archive, groups runs by request shape, and reports cross-run deltas,
// epoch drift slopes and alerts against the -expectations rule file
// (exit 1 when alerts fire; see internal/analyze).
// Output on stdout is a deterministic function of the flags and seed:
// for the same selection it is byte-identical for every -workers and
// -parallel value (timings and progress go to stderr). The same
// canonical request also keys cmd/tcsb-server's run cache, so a
// campaign run here is the same content address the service computes.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"tcsb/internal/analyze"
	"tcsb/internal/core"
	"tcsb/internal/counterfactual"
	"tcsb/internal/experiments"
	"tcsb/internal/netsim"
	"tcsb/internal/report"
	"tcsb/internal/scenario"
	"tcsb/internal/timeline"
)

// options carries the parsed flag values into buildRequest. explicit
// holds the names of flags the user actually set (flag.Visit), which is
// how timeline mode distinguishes "-days 10 by default" from "-days 10
// on the command line" — the former is ignored in favor of the
// schedule, the latter is a contradiction that must not be swallowed.
type options struct {
	seed         int64
	scale        float64
	preset       string
	netProfile   string
	days         int
	only         string
	whatIf       string
	attackParams string
	timelineSpec string
	epochs       int
	workers      int
	parallel     int
	archiveDir   string
	analyze      bool
	expectations string
	explicit     map[string]bool
}

// runFlagNames are the campaign-shaping flags; none of them mean
// anything in analyze-only mode, so setting one there is a
// contradiction surfaced at exit 2, never silently ignored.
var runFlagNames = []string{
	"seed", "scale", "preset", "net-profile", "days", "only", "what-if",
	"attack-params", "timeline", "epochs", "workers", "parallel", "retain-trace",
}

// validateAnalyzeOptions rejects flag shapes that mix analyze-only mode
// with campaign flags. Pure, so the table tests cover each rejection.
func validateAnalyzeOptions(o options) error {
	if !o.analyze {
		if o.expectations != "" {
			return fmt.Errorf("-expectations only applies to -analyze mode")
		}
		return nil
	}
	if o.archiveDir == "" {
		return fmt.Errorf("-analyze needs -archive-dir: the archive is what gets analyzed")
	}
	for _, name := range runFlagNames {
		if o.explicit[name] {
			return fmt.Errorf("-%s shapes a campaign; -analyze reads prior archives and runs nothing", name)
		}
	}
	return nil
}

// buildRequest validates the flag shape and reduces it to the canonical
// run request. Every rejection here is an exit-2 diagnostic in main;
// the function is pure so the table tests can cover each one.
func buildRequest(o options) (core.RunRequest, error) {
	var req core.RunRequest
	if o.workers <= 0 {
		return req, fmt.Errorf("-workers must be positive (got %d); the pool size never changes the output, so there is no zero-worker mode", o.workers)
	}
	if o.parallel <= 0 {
		return req, fmt.Errorf("-parallel must be positive (got %d)", o.parallel)
	}
	if o.scale <= 0 {
		return req, fmt.Errorf("-scale must be positive (got %g)", o.scale)
	}
	timelineMode := o.timelineSpec != "" || o.epochs > 0
	days := o.days
	if timelineMode {
		if o.explicit["days"] {
			return req, fmt.Errorf("-days is owned by the schedule in timeline mode; use a days= clause in the -timeline spec instead")
		}
		days = 0 // the schedule's calendar applies
	} else if days <= 0 {
		return req, fmt.Errorf("-days must be positive (got %d)", days)
	}
	var only []string
	for _, f := range strings.Split(o.only, ",") {
		if f = strings.TrimSpace(f); f != "" {
			only = append(only, f)
		}
	}
	req = core.RunRequest{
		Seed:         o.seed,
		Scale:        o.scale,
		Preset:       o.preset,
		Days:         days,
		NetProfile:   o.netProfile,
		AttackParams: o.attackParams,
		WhatIf:       o.whatIf,
		Timeline:     o.timelineSpec,
		Epochs:       o.epochs,
		Only:         only,
		Workers:      o.workers,
		Parallel:     o.parallel,
	}
	return req, nil
}

func main() {
	o := options{explicit: make(map[string]bool)}
	flag.Int64Var(&o.seed, "seed", 1, "simulation seed")
	flag.Float64Var(&o.scale, "scale", 1.0, "population scale factor (1.0 ≈ 1/12 of the real network)")
	flag.StringVar(&o.preset, "preset", "", "named scale.* scenario preset (e.g. scale.4x); composes with -scale")
	retain := flag.Bool("retain-trace", false, "retain raw vantage-point event logs alongside the streaming statistics (costs gigabytes at default scale)")
	flag.StringVar(&o.netProfile, "net-profile", "", "per-link impairment model: a net.* preset (net.ideal, net.measured, net.degraded) or a raw spec like \"cloud-cloud=5ms±2;resi-cloud=40ms±15,loss=0.02\"; empty = net.ideal (zero latency)")
	flag.IntVar(&o.days, "days", 10, "observation days (timeline mode: the schedule owns the calendar; setting -days is an error)")
	flag.StringVar(&o.only, "only", "", "comma-separated experiment filter (e.g. table1,fig3,fig13)")
	flag.StringVar(&o.whatIf, "what-if", "", "comma-separated counterfactual interventions (e.g. hydra-dissolution,churn-2x or attack.sybil-eclipse); runs a paired baseline/intervention campaign and the whatif.* delta experiments")
	flag.StringVar(&o.attackParams, "attack-params", "", "attack.* parameter overrides (e.g. \"band=20;sybils=48;spam=100\"); tunes any attack interventions named by -what-if or a -timeline schedule")
	flag.StringVar(&o.timelineSpec, "timeline", "", "epoch schedule (e.g. \"epochs=14;@5:hydra-dissolution\") or a timeline.* preset name; runs a longitudinal campaign and the timeline.* experiments")
	flag.IntVar(&o.epochs, "epochs", 0, "override the -timeline schedule's epoch count (alone: a drift-free epochs=N schedule)")
	flag.IntVar(&o.workers, "workers", runtime.NumCPU(), "goroutine pool size for the observation campaign (output is identical for every value; must be positive)")
	flag.IntVar(&o.parallel, "parallel", runtime.NumCPU(), "max experiments executed concurrently (must be positive)")
	jsonOut := flag.Bool("json", false, "emit JSONL (one JSON object per table) instead of text tables; in -analyze mode, the full report JSON instead of the summary")
	list := flag.Bool("list", false, "list registered experiments and interventions, then exit")
	flag.StringVar(&o.archiveDir, "archive-dir", "", "run archive directory: campaign runs persist their JSONL stream + request manifest there; -analyze reads it back")
	flag.BoolVar(&o.analyze, "analyze", false, "analyze-only mode: ingest the -archive-dir, group runs by request shape, report cross-run deltas, drift slopes and expectation alerts (exit 1 when alerts fire); runs no simulation")
	flag.StringVar(&o.expectations, "expectations", "", "pinned expectations file for -analyze (JSON rule list; see expectations.json)")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) { o.explicit[f.Name] = true })

	if *list {
		fmt.Println(experiments.ListTable())
		fmt.Println()
		fmt.Println(interventionList())
		fmt.Println()
		fmt.Println(presetList())
		fmt.Println()
		fmt.Println(netPresetList())
		fmt.Println()
		fmt.Println(timelinePresetList())
		return
	}

	if err := validateAnalyzeOptions(o); err != nil {
		fmt.Fprintln(os.Stderr, "tcsb-experiments:", err)
		os.Exit(2)
	}
	if o.analyze {
		alerts, err := runAnalyze(o.archiveDir, o.expectations, *jsonOut, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcsb-experiments:", err)
			os.Exit(2)
		}
		if alerts > 0 {
			os.Exit(1)
		}
		return
	}

	req, err := buildRequest(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcsb-experiments:", err)
		os.Exit(2)
	}
	// Resolve validates the request against every registry (experiments,
	// interventions, presets, grammars) before any simulation is paid
	// for; invalid input is a diagnostic, never a panic.
	res, err := experiments.Resolve(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcsb-experiments:", err)
		os.Exit(2)
	}
	res.RC.RetainTrace = *retain

	progress := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	results, err := res.Execute(progress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcsb-experiments:", err)
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr)

	if o.archiveDir != "" {
		// Archives always hold the JSONL stream — the exact bytes the run
		// cache stores — whatever the stdout format is.
		var buf bytes.Buffer
		if err := experiments.RenderJSONL(&buf, results); err != nil {
			fmt.Fprintln(os.Stderr, "tcsb-experiments:", err)
			os.Exit(1)
		}
		if err := analyze.WriteArchive(o.archiveDir, res.Key, res.Req, buf.Bytes()); err != nil {
			fmt.Fprintln(os.Stderr, "tcsb-experiments: archive:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "archived run %s to %s\n", res.Key, o.archiveDir)
	}

	render := experiments.RenderText
	if *jsonOut {
		render = experiments.RenderJSONL
	}
	if err := render(os.Stdout, results); err != nil {
		fmt.Fprintln(os.Stderr, "tcsb-experiments:", err)
		os.Exit(1)
	}
}

// runAnalyze is the analyze-only mode: load the archive, apply the
// expectations, render the report (summary or full JSON) and return
// the alert count. Pure over its inputs, so tests drive it directly.
func runAnalyze(dir, expectations string, jsonOut bool, w io.Writer) (int, error) {
	var exp analyze.Expectations
	if expectations != "" {
		var err error
		if exp, err = analyze.LoadExpectations(expectations); err != nil {
			return 0, err
		}
	}
	runs, err := analyze.LoadArchive(dir)
	if err != nil {
		return 0, err
	}
	rep := analyze.Analyze(runs, exp)
	render := analyze.RenderSummary
	if jsonOut {
		render = analyze.RenderJSON
	}
	if err := render(w, rep); err != nil {
		return 0, err
	}
	return len(rep.Alerts), nil
}

// interventionList renders the counterfactual catalog for -list.
func interventionList() *report.Table {
	t := &report.Table{
		Title:   "Named interventions (-what-if, comma-composable)",
		Columns: []string{"name", "description"},
	}
	for _, iv := range counterfactual.All() {
		t.AddRow(iv.Name, iv.Description)
	}
	return t
}

// presetList renders the scale.* scenario family for -list.
func presetList() *report.Table {
	t := &report.Table{
		Title:   "Scale presets (-preset; streaming observation keeps them memory-feasible)",
		Columns: []string{"name", "description"},
	}
	for _, p := range scenario.ScalePresets() {
		t.AddRow(p.Name, p.Description)
	}
	return t
}

// netPresetList renders the net.* link-profile family for -list.
func netPresetList() *report.Table {
	t := &report.Table{
		Title:   "Network profiles (-net-profile; also -what-if / @epoch composable as net.*)",
		Columns: []string{"name", "spec", "description"},
	}
	for _, p := range netsim.LinkPresets() {
		t.AddRow(p.Name, p.Spec, p.Description)
	}
	return t
}

// timelinePresetList renders the timeline.* schedule family for -list.
func timelinePresetList() *report.Table {
	t := &report.Table{
		Title:   "Timeline presets (-timeline; or pass a schedule spec directly)",
		Columns: []string{"name", "schedule", "description"},
	}
	for _, p := range timeline.Presets() {
		t.AddRow(p.Name, p.Spec, p.Description)
	}
	return t
}
