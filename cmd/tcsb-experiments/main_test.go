package main

import (
	"strings"
	"testing"
)

// defaults mirrors the flag defaults main registers, so each case only
// states its deviation.
func defaults() options {
	return options{
		seed:     1,
		scale:    1.0,
		days:     10,
		workers:  4,
		parallel: 4,
		explicit: map[string]bool{},
	}
}

// TestBuildRequestValidation pins the exit-2 surface: every invalid
// flag shape is rejected with a diagnostic before any simulation runs.
// In particular -workers 0 must be an error, not a silent one-worker
// campaign under a banner that says workers=0.
func TestBuildRequestValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*options)
		wantErr string // "" = must pass
	}{
		{"defaults pass", func(o *options) {}, ""},
		{"workers zero", func(o *options) { o.workers = 0; o.explicit["workers"] = true }, "-workers must be positive"},
		{"workers negative", func(o *options) { o.workers = -3 }, "-workers must be positive"},
		{"parallel zero", func(o *options) { o.parallel = 0 }, "-parallel must be positive"},
		{"parallel negative", func(o *options) { o.parallel = -1 }, "-parallel must be positive"},
		{"scale zero", func(o *options) { o.scale = 0 }, "-scale must be positive"},
		{"scale negative", func(o *options) { o.scale = -0.5 }, "-scale must be positive"},
		{"days zero", func(o *options) { o.days = 0; o.explicit["days"] = true }, "-days must be positive"},
		{"days negative", func(o *options) { o.days = -7; o.explicit["days"] = true }, "-days must be positive"},
		{
			"explicit days in timeline mode",
			func(o *options) {
				o.timelineSpec = "epochs=3"
				o.days = 5
				o.explicit["days"] = true
			},
			"owned by the schedule",
		},
		{
			"explicit days with epochs-only timeline",
			func(o *options) {
				o.epochs = 4
				o.days = 10 // even the default value, set explicitly, contradicts the schedule
				o.explicit["days"] = true
			},
			"owned by the schedule",
		},
		{
			// The default -days value without an explicit flag is not a
			// contradiction: the schedule silently owns the calendar.
			"default days in timeline mode passes",
			func(o *options) { o.timelineSpec = "epochs=3" },
			"",
		},
		{"timeline mode ignores days default", func(o *options) { o.epochs = 2 }, ""},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			o := defaults()
			tc.mutate(&o)
			req, err := buildRequest(o)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("buildRequest: %v", err)
				}
				if (o.timelineSpec != "" || o.epochs > 0) && req.Days != 0 {
					t.Fatalf("timeline-mode request carries Days=%d; the schedule owns the calendar", req.Days)
				}
				return
			}
			if err == nil {
				t.Fatalf("buildRequest accepted %s; want error containing %q", tc.name, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestBuildRequestOnlySplit pins the -only comma splitting.
func TestBuildRequestOnlySplit(t *testing.T) {
	o := defaults()
	o.only = " fig3, ,table1 ,"
	req, err := buildRequest(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Only) != 2 || req.Only[0] != "fig3" || req.Only[1] != "table1" {
		t.Fatalf("Only = %q", req.Only)
	}
}
