package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tcsb/internal/analyze"
	"tcsb/internal/core"
)

// defaults mirrors the flag defaults main registers, so each case only
// states its deviation.
func defaults() options {
	return options{
		seed:     1,
		scale:    1.0,
		days:     10,
		workers:  4,
		parallel: 4,
		explicit: map[string]bool{},
	}
}

// TestBuildRequestValidation pins the exit-2 surface: every invalid
// flag shape is rejected with a diagnostic before any simulation runs.
// In particular -workers 0 must be an error, not a silent one-worker
// campaign under a banner that says workers=0.
func TestBuildRequestValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*options)
		wantErr string // "" = must pass
	}{
		{"defaults pass", func(o *options) {}, ""},
		{"workers zero", func(o *options) { o.workers = 0; o.explicit["workers"] = true }, "-workers must be positive"},
		{"workers negative", func(o *options) { o.workers = -3 }, "-workers must be positive"},
		{"parallel zero", func(o *options) { o.parallel = 0 }, "-parallel must be positive"},
		{"parallel negative", func(o *options) { o.parallel = -1 }, "-parallel must be positive"},
		{"scale zero", func(o *options) { o.scale = 0 }, "-scale must be positive"},
		{"scale negative", func(o *options) { o.scale = -0.5 }, "-scale must be positive"},
		{"days zero", func(o *options) { o.days = 0; o.explicit["days"] = true }, "-days must be positive"},
		{"days negative", func(o *options) { o.days = -7; o.explicit["days"] = true }, "-days must be positive"},
		{
			"explicit days in timeline mode",
			func(o *options) {
				o.timelineSpec = "epochs=3"
				o.days = 5
				o.explicit["days"] = true
			},
			"owned by the schedule",
		},
		{
			"explicit days with epochs-only timeline",
			func(o *options) {
				o.epochs = 4
				o.days = 10 // even the default value, set explicitly, contradicts the schedule
				o.explicit["days"] = true
			},
			"owned by the schedule",
		},
		{
			// The default -days value without an explicit flag is not a
			// contradiction: the schedule silently owns the calendar.
			"default days in timeline mode passes",
			func(o *options) { o.timelineSpec = "epochs=3" },
			"",
		},
		{"timeline mode ignores days default", func(o *options) { o.epochs = 2 }, ""},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			o := defaults()
			tc.mutate(&o)
			req, err := buildRequest(o)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("buildRequest: %v", err)
				}
				if (o.timelineSpec != "" || o.epochs > 0) && req.Days != 0 {
					t.Fatalf("timeline-mode request carries Days=%d; the schedule owns the calendar", req.Days)
				}
				return
			}
			if err == nil {
				t.Fatalf("buildRequest accepted %s; want error containing %q", tc.name, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestBuildRequestOnlySplit pins the -only comma splitting.
func TestBuildRequestOnlySplit(t *testing.T) {
	o := defaults()
	o.only = " fig3, ,table1 ,"
	req, err := buildRequest(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Only) != 2 || req.Only[0] != "fig3" || req.Only[1] != "table1" {
		t.Fatalf("Only = %q", req.Only)
	}
}

// TestValidateAnalyzeOptions pins the analyze-mode flag surface:
// analyze needs an archive, campaign flags contradict it, and
// -expectations means nothing outside it.
func TestValidateAnalyzeOptions(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*options)
		wantErr string
	}{
		{"run mode passes", func(o *options) {}, ""},
		{"archive-dir alone passes", func(o *options) { o.archiveDir = "runs" }, ""},
		{"analyze with archive passes", func(o *options) { o.analyze = true; o.archiveDir = "runs" }, ""},
		{"analyze without archive", func(o *options) { o.analyze = true }, "needs -archive-dir"},
		{
			"analyze with campaign flag",
			func(o *options) {
				o.analyze = true
				o.archiveDir = "runs"
				o.explicit["seed"] = true
			},
			"runs nothing",
		},
		{
			"analyze with what-if",
			func(o *options) {
				o.analyze = true
				o.archiveDir = "runs"
				o.explicit["what-if"] = true
			},
			"runs nothing",
		},
		{"expectations outside analyze", func(o *options) { o.expectations = "e.json" }, "only applies to -analyze"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			o := defaults()
			tc.mutate(&o)
			err := validateAnalyzeOptions(o)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateAnalyzeOptions: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

// TestRunAnalyze drives the analyze-only mode end to end over a
// hand-written archive: summary output, report JSON, alert counting and
// the error surfaces for a bad directory or expectations file.
func TestRunAnalyze(t *testing.T) {
	dir := t.TempDir()
	jsonl := []byte(`{"experiment":"figx","section":"§9","table":{"title":"t","columns":["k","share"],"rows":[["A-N","91.9%"]]}}` + "\n")
	if err := analyze.WriteArchive(dir, "aaa1", core.RunRequest{Seed: 1, Scale: 0.05, Days: 1}, jsonl); err != nil {
		t.Fatal(err)
	}
	jsonl2 := []byte(`{"experiment":"figx","section":"§9","table":{"title":"t","columns":["k","share"],"rows":[["A-N","99%"]]}}` + "\n")
	if err := analyze.WriteArchive(dir, "aaa2", core.RunRequest{Seed: 2, Scale: 0.05, Days: 1}, jsonl2); err != nil {
		t.Fatal(err)
	}

	var sum bytes.Buffer
	alerts, err := runAnalyze(dir, "", false, &sum)
	if err != nil || alerts != 0 {
		t.Fatalf("alerts=%d err=%v", alerts, err)
	}
	if !strings.Contains(sum.String(), "analyzed 2 archived runs") {
		t.Fatalf("summary:\n%s", sum.String())
	}

	expPath := filepath.Join(t.TempDir(), "exp.json")
	if err := os.WriteFile(expPath, []byte(`{"rules":[{"column":"share","max":95}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var rep bytes.Buffer
	alerts, err = runAnalyze(dir, expPath, true, &rep)
	if err != nil || alerts != 1 {
		t.Fatalf("alerts=%d err=%v", alerts, err)
	}
	var doc struct {
		Alerts []map[string]any `json:"alerts"`
	}
	if err := json.Unmarshal(rep.Bytes(), &doc); err != nil {
		t.Fatalf("report JSON: %v\n%s", err, rep.String())
	}
	if len(doc.Alerts) != 1 || doc.Alerts[0]["kind"] != "bound" {
		t.Fatalf("alerts: %+v", doc.Alerts)
	}

	if _, err := runAnalyze(filepath.Join(dir, "missing"), "", false, io.Discard); err == nil {
		t.Fatal("missing archive dir accepted")
	}
	if err := os.WriteFile(expPath, []byte(`{"rules":[{"column":""}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runAnalyze(dir, expPath, false, io.Discard); err == nil {
		t.Fatal("invalid expectations accepted")
	}
}
