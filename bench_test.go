package tcsb_test

// Registry-driven benchmarks: every experiment registered in
// internal/experiments gets a sub-benchmark deriving it from a shared
// observation campaign (built once), so a newly registered experiment is
// benchmarked with no wiring here. Ablation benches for the design
// choices called out in DESIGN.md, plus the heavy pipeline benches
// (world construction, crawling, collection), build their own fixtures.
//
// Run everything:      go test -bench=. -benchmem .
// All experiments:     go test -bench=BenchmarkExperiments .
// One experiment:      go test -bench=BenchmarkExperiments/fig8 .
// Parallel engine:     go test -bench=BenchmarkExperimentEngine .

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"testing"

	"tcsb/internal/analysis"
	"tcsb/internal/core"
	"tcsb/internal/counterfactual"
	"tcsb/internal/counting"
	"tcsb/internal/crawler"
	"tcsb/internal/dht"
	"tcsb/internal/experiments"
	"tcsb/internal/graph"
	"tcsb/internal/hydra"
	"tcsb/internal/ids"
	"tcsb/internal/indexer"
	"tcsb/internal/netsim"
	"tcsb/internal/node"
	"tcsb/internal/report"
	"tcsb/internal/scenario"
	"tcsb/internal/simtest"
	"tcsb/internal/simtest/campaign"
	"tcsb/internal/trace"
)

// benchObservatory returns the shared campaign fixture (built once per
// process by simtest, shared with the core shape tests).
func benchObservatory(b *testing.B) *core.Observatory {
	b.Helper()
	return campaign.MediumObservatory(21, 2)
}

// BenchmarkCampaign measures the full observation campaign — world
// construction, sharded tick stepping, crawls, provider-record
// collection and the analysis stages — at increasing campaign worker
// counts. This is the headline number BENCH_campaign.json records; the
// output is byte-identical across worker counts, so the sub-benchmarks
// differ only in wall-clock. Skipped under -short (CI runs benches with
// -benchtime=1x -short; the campaign fixture there would dominate).
func BenchmarkCampaign(b *testing.B) {
	if testing.Short() {
		b.Skip("full campaign benchmark")
	}
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := scenario.DefaultConfig()
				cfg.Seed = 1
				rc := core.DefaultRunConfig()
				rc.Workers = workers
				o := core.Observe(cfg, rc)
				if o.HydraStats().Len() == 0 {
					b.Fatal("empty campaign")
				}
			}
		})
	}
	// The network-realism row: the same campaign under the net.measured
	// link profile. Impairment draws and timing-sink folds happen on
	// every RPC, so the delta against workers-8 is the whole cost of the
	// latency layer; memory must stay flat — the latency.* figures come
	// out of fixed-size sketches, never a retained timing trace.
	b.Run("net-measured-workers-8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := scenario.DefaultConfig()
			cfg.Seed = 1
			cfg.NetProfile = "net.measured"
			rc := core.DefaultRunConfig()
			rc.Workers = 8
			o := core.Observe(cfg, rc)
			if o.World.Timing.Sketch(trace.PhaseGateway).Count() == 0 {
				b.Fatal("no gateway latency samples folded")
			}
		}
	})
}

// benchTimelineResult builds (once per process) the small longitudinal
// fixture the timeline.* experiment benchmarks derive from: two epochs
// with a churn drift at epoch 1, on the small campaign shape.
var benchTimelineOnce struct {
	sync.Once
	tr *core.TimelineResult
}

func benchTimelineResult(b *testing.B) *core.TimelineResult {
	b.Helper()
	benchTimelineOnce.Do(func() {
		sch, err := counterfactual.CompileSchedule("epochs=2;@1:churn:2")
		if err != nil {
			panic(err)
		}
		rc := campaign.SmallRunConfig()
		rc.Workers = 2
		tr, err := core.RunTimeline(campaign.SmallConfig(21), rc, sch)
		if err != nil {
			panic(err)
		}
		benchTimelineOnce.tr = tr
	})
	return benchTimelineOnce.tr
}

// BenchmarkTimeline measures the acceptance-scenario longitudinal
// campaign — 14 epochs over one evolving default-scale world with the
// Hydra fleet dissolving at epoch 5 — end to end: world construction,
// per-epoch ticking/crawling/collection, epoch snapshots and the
// timeline.* derivations. The per-epoch cost is flat (activity is read
// as deltas of the bounded streaming accumulators); BENCH_campaign.json
// records the measured wall clock next to the plain campaign's.
func BenchmarkTimeline(b *testing.B) {
	if testing.Short() {
		b.Skip("full longitudinal campaign benchmark")
	}
	sch, err := counterfactual.CompileSchedule("epochs=14;days=1;@5:hydra-dissolution")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := scenario.DefaultConfig()
		cfg.Seed = 1
		rc := core.DefaultRunConfig()
		rc.Workers = 1
		tr, err := core.RunTimeline(cfg, rc, sch)
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.Epochs) != 14 {
			b.Fatal("short timeline")
		}
		results, err := experiments.RunTimeline(tr, nil, 2)
		if err != nil || len(results) == 0 {
			b.Fatalf("timeline derivations failed: %v", err)
		}
	}
}

// --- Tables and figures (registry-driven) ---

// BenchmarkExperiments runs every registered experiment as a
// sub-benchmark: one Register() call in internal/experiments is all it
// takes for a new experiment to appear here. Shared derived data is
// memoized on the fixture, so these measure the warm (steady-state)
// path; BenchmarkDerivations covers the cold path of the memoized
// derivations themselves.
func BenchmarkExperiments(b *testing.B) {
	o := benchObservatory(b)
	tl := benchTimelineResult(b)
	for _, e := range experiments.All() {
		e := e
		// Delta (whatif.*) experiments derive from a campaign pair; the
		// self-pair measures the derivation cost without a second
		// campaign build (every delta renders as zero). Timeline
		// (timeline.*) experiments derive from the shared longitudinal
		// fixture.
		derive := func() []*report.Table { return e.Run(o) }
		switch e.Kind() {
		case experiments.ModeDelta:
			derive = func() []*report.Table { return e.Delta(o, o) }
		case experiments.ModeTimeline:
			derive = func() []*report.Table { return e.Timeline(tl) }
		}
		b.Run(e.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if tables := derive(); len(tables) == 0 {
					b.Fatalf("%s produced no tables", e.Name)
				}
			}
		})
	}
}

// BenchmarkExperimentEngine measures the full catalog end-to-end at
// increasing worker counts — the speedup the parallel runner buys over
// the old serial print chain.
func BenchmarkExperimentEngine(b *testing.B) {
	o := benchObservatory(b)
	for _, parallel := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel-%d", parallel), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Run(o, nil, parallel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDerivations measures the shared derivations that
// internal/core memoizes behind sync.Once, calling the underlying
// builders directly so every iteration pays the full (cold) cost — the
// warm-path experiment benches above would otherwise hide a regression
// here after the first iteration.
func BenchmarkDerivations(b *testing.B) {
	o := benchObservatory(b)
	lastSnap := o.Crawls.Snapshots[len(o.Crawls.Snapshots)-1]
	b.Run("counting-dataset", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = counting.FromSeries(&o.Crawls)
		}
	})
	b.Run("crawl-graph", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = graph.FromSnapshot(lastSnap)
		}
	})
	b.Run("undirected-adjacency", func(b *testing.B) {
		g := graph.FromSnapshot(lastSnap)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = g.Undirected()
		}
	})
	b.Run("provider-profiles", func(b *testing.B) {
		isCloud := func(ip netip.Addr) bool { return o.World.DB.Lookup(ip).Cloud() }
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = analysis.Profiles(&o.Records, isCloud)
		}
	})
	// The map-copying accessors vs the iterator accessors the render
	// path (peerPareto/ipPareto, Figs. 10–11) migrated to. The copy
	// materializes every distinct identifier per call — ~127 KB / 20
	// allocs on this fixture, and before the migration four such maps
	// (hydra/monitor × peer/IP) were memoized per observatory (doubled
	// by every what-if pairing). The iterator walks the accumulator's
	// dense columnar storage and allocates nothing; the per-experiment
	// BenchmarkExperiments/fig10,fig11 rows carry a few extra stack
	// frames per yield but no retained copies at all.
	b.Run("hydra-activity-copy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = o.HydraStats().ActivityByPeer()
			_ = o.HydraStats().ActivityByIP()
		}
	})
	b.Run("hydra-activity-iter", func(b *testing.B) {
		b.ReportAllocs()
		var n int64
		for i := 0; i < b.N; i++ {
			o.HydraStats().EachPeerActivity(func(_ ids.PeerID, c int64) { n += c })
			o.HydraStats().EachIPActivity(func(_ netip.Addr, c int64) { n += c })
		}
		_ = n
	})
}

// --- Heavy pipeline benches ---

func BenchmarkCrawlDataset(b *testing.B) {
	net := simtest.BuildServers(1000)
	seeds := net.Seeds(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := crawler.Crawl(net.Network, crawler.Config{
			ID: i, CrawlerID: ids.PeerIDFromSeed(1 << 60),
		}, seeds)
		if snap.Discovered() == 0 {
			b.Fatal("empty crawl")
		}
	}
}

func BenchmarkWorldDay(b *testing.B) {
	cfg := scenario.DefaultConfig().Scaled(0.1)
	cfg.Seed = 31
	w := scenario.NewWorld(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.StepTick()
	}
}

// --- Ablations (DESIGN.md: design choices worth measuring) ---

// BenchmarkAblationCounting compares the two counting methodologies on an
// identical crawl dataset: A-N does strictly more grouping work, which is
// the price of churn-corrected estimates.
func BenchmarkAblationCounting(b *testing.B) {
	o := benchObservatory(b)
	d := counting.FromSeries(&o.Crawls)
	attr := o.World.CloudAttr()
	b.Run("G-IP", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = d.GIP(attr)
		}
	})
	b.Run("A-N", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = d.AN(attr, counting.MajorityVote)
		}
	})
}

// BenchmarkAblationCrawlTimeout contrasts crawl cost under short vs long
// connection timeouts in a churned network: long timeouts (the paper's 3
// minutes) buy completeness at the price of the modeled wait the paper
// describes ("the latter half is typically spent waiting").
func BenchmarkAblationCrawlTimeout(b *testing.B) {
	net := simtest.BuildServers(600)
	for i := 0; i < 200; i++ {
		net.Network.SetOnline(net.Nodes[i*3].ID(), false)
	}
	seeds := []netsim.PeerInfo{net.Network.Info(net.Nodes[1].ID()), net.Network.Info(net.Nodes[4].ID())}
	for _, tc := range []struct {
		name    string
		timeout float64
	}{{"timeout3s", 3}, {"timeout180s", 180}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var wait float64
			for i := 0; i < b.N; i++ {
				snap := crawler.Crawl(net.Network, crawler.Config{
					ID: i, CrawlerID: ids.PeerIDFromSeed(1 << 59),
					ConnTimeoutSec: tc.timeout,
				}, seeds)
				wait += snap.ModeledWaitSec
			}
			b.ReportMetric(wait/float64(b.N), "modeled-wait-s")
		})
	}
}

// BenchmarkAblationFindProviders compares the standard (stop at 20) and
// exhaustive (query all resolvers) FindProviders for a popular CID — the
// overhead the paper's ethics appendix quantifies.
func BenchmarkAblationFindProviders(b *testing.B) {
	net := simtest.BuildServers(500)
	c := ids.CIDFromSeed(77)
	for i := 0; i < 40; i++ {
		net.Nodes[i].AddBlock(c)
		net.Nodes[i].Provide(c)
	}
	requester := net.Nodes[450]
	b.Run("standard", func(b *testing.B) {
		b.ReportAllocs()
		var queried int
		for i := 0; i < b.N; i++ {
			_, st := requester.FindProviders(c, dht.FindProvidersOpts{})
			queried += st.Queried
		}
		b.ReportMetric(float64(queried)/float64(b.N), "peers-queried")
	})
	b.Run("exhaustive", func(b *testing.B) {
		b.ReportAllocs()
		var queried int
		for i := 0; i < b.N; i++ {
			_, st := requester.FindProviders(c, dht.FindProvidersOpts{Exhaustive: true})
			queried += st.Queried
		}
		b.ReportMetric(float64(queried)/float64(b.N), "peers-queried")
	})
}

// BenchmarkAblationHydraCache measures the proactive-lookup amplification
// (the paper's DoS observation): RPCs generated per unresolvable
// GetProviders request, with and without proactive lookups.
func BenchmarkAblationHydraCache(b *testing.B) {
	for _, proactive := range []bool{false, true} {
		name := "proactive-off"
		if proactive {
			name = "proactive-on"
		}
		b.Run(name, func(b *testing.B) {
			net := simtest.BuildServers(400)
			h := hydra.New(net.Network, 1<<50, hydra.Config{Heads: 5, ProactiveLookups: proactive})
			for _, head := range h.Heads() {
				net.Network.Attach(head, h, netsim.HostConfig{Reachable: true})
			}
			var seeds []netsim.PeerInfo
			for _, nd := range net.Nodes {
				seeds = append(seeds, net.Network.Info(nd.ID()))
			}
			h.Bootstrap(seeds)
			head := h.Heads()[0]
			caller := net.Nodes[0].ID()
			b.ReportAllocs()
			b.ResetTimer()
			before := net.Network.TotalMessages()
			for i := 0; i < b.N; i++ {
				bogus := ids.CIDFromSeed(uint64(1<<40 + i))
				_, _, _ = net.Network.GetProviders(caller, head, bogus)
				h.ProcessPending(0)
			}
			amplification := float64(net.Network.TotalMessages()-before) / float64(b.N)
			b.ReportMetric(amplification, "rpcs-per-request")
		})
	}
}

// BenchmarkAblationResolution compares Bitswap-first resolution (the IPFS
// default) against DHT-only resolution for popular content: the 1-hop
// broadcast short-circuits the walk when a neighbour has the block.
func BenchmarkAblationResolution(b *testing.B) {
	net := simtest.BuildServers(500)
	c := ids.CIDFromSeed(5)
	holder := net.Nodes[3]
	holder.AddBlock(c)
	holder.Provide(c)
	requester := net.Nodes[400]
	requester.ConnectBitswap(holder.ID())
	b.Run("bitswap-first", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			requester.RemoveBlock(c)
			res := requester.Retrieve(c, false)
			if !res.Found {
				b.Fatal("retrieval failed")
			}
		}
	})
	b.Run("dht-only", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			recs, _ := requester.FindProviders(c, dht.FindProvidersOpts{})
			if len(recs) == 0 {
				b.Fatal("resolution failed")
			}
		}
	})
}

// BenchmarkAblationTopologyFill compares protocol-accurate joins
// (bootstrap walk + bucket refreshes) with the oracle fill used for large
// scenarios.
func BenchmarkAblationTopologyFill(b *testing.B) {
	b.Run("oracle-fill", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = simtest.BuildServers(300)
		}
	})
	b.Run("bootstrap-walks", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			net := simtest.BuildServers(300)
			// One additional node joins the protocol-accurate way.
			nd := newJoiner(net, uint64(1<<45+i))
			nd.Bootstrap([]netsim.PeerInfo{net.Network.Info(net.Nodes[0].ID())})
			nd.RefreshBuckets(8)
		}
	})
}

// BenchmarkRemovalOrders compares random and targeted removal-order
// computation on a crawled topology (the Fig. 8 inner loops).
func BenchmarkRemovalOrders(b *testing.B) {
	net := simtest.BuildServers(600)
	snap := crawler.Crawl(net.Network, crawler.Config{ID: 1, CrawlerID: ids.PeerIDFromSeed(1 << 60)}, net.Seeds(2))
	g := graph.FromSnapshot(snap)
	adj := g.Undirected()
	rng := rand.New(rand.NewSource(1))
	b.Run("random", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			order := graph.RandomOrder(g.N(), rng)
			_ = graph.RemovalCurve(adj, order)
		}
	})
	b.Run("targeted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			order := graph.TargetedOrder(adj)
			_ = graph.RemovalCurve(adj, order)
		}
	})
}

// newJoiner creates a fresh DHT server node attached to the fixture
// network, for join-cost measurements.
func newJoiner(net *simtest.Net, seed uint64) *node.Node {
	id := ids.PeerIDFromSeed(seed)
	nd := node.New(id, net.Network, node.Config{DHTServer: true})
	net.Network.Attach(id, nd, netsim.HostConfig{Reachable: true})
	return nd
}

// BenchmarkAblationIndexer quantifies the Section 9 trade-off: resolution
// through a centralized network indexer (one lookup, zero overlay RPCs)
// vs a DHT walk. The speed asymmetry is the centralization pressure the
// paper warns about.
func BenchmarkAblationIndexer(b *testing.B) {
	net := simtest.BuildServers(500)
	c := ids.CIDFromSeed(7)
	provider := net.Nodes[3]
	provider.AddBlock(c)
	provider.Provide(c)
	ix := indexer.New()
	ix.Announce(net.Network.Info(provider.ID()), []ids.CID{c})
	w := dht.NewWalker(net.Network, ids.PeerIDFromSeed(1<<50))
	seeds := net.Seeds(4)

	b.Run("indexer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if recs := ix.Resolve(c); len(recs) == 0 {
				b.Fatal("resolution failed")
			}
		}
	})
	b.Run("dht-walk", func(b *testing.B) {
		b.ReportAllocs()
		var queried int
		for i := 0; i < b.N; i++ {
			recs, st := w.FindProviders(seeds, c, dht.FindProvidersOpts{})
			if len(recs) == 0 {
				b.Fatal("resolution failed")
			}
			queried += st.Queried
		}
		b.ReportMetric(float64(queried)/float64(b.N), "peers-queried")
	})
	b.Run("indexer-with-dht-fallback-blocked", func(b *testing.B) {
		ix.Block(c)
		defer ix.Unblock(c)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := indexer.ResolveWithFallback(ix, w, seeds, c)
			if len(res.Records) == 0 || res.ViaIndexer {
				b.Fatal("fallback failed")
			}
		}
	})
}

// BenchmarkSectionChurn derives the §4 liveness evidence from the crawl
// series.
func BenchmarkSectionChurn(b *testing.B) {
	o := benchObservatory(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = o.SectionChurn()
	}
}
