// Package tcsb is a from-scratch Go reproduction of "The Cloud Strikes
// Back: Investigating the Decentralization of IPFS" (Balduf et al., IMC
// 2023, arXiv:2309.16203).
//
// The repository contains a deterministic simulator of the IPFS network
// (Kademlia DHT with server/client roles, Bitswap, circuit relays, HTTP
// gateways, churn and IP rotation), offline substitutes for the study's
// commercial data sources (cloud-IP and geolocation databases, DNS zone
// data, passive DNS, Ethereum event logs), re-implementations of every
// measurement tool the paper used (DHT crawler, Bitswap monitor, Hydra
// booster, exhaustive provider-record collector, gateway prober, DNSLink
// scanner, ENS extractor), and a registry-driven experiment engine
// (internal/experiments) whose parallel runner regenerates every table
// and figure of the paper's evaluation from one shared observation
// campaign. The campaign itself is concurrent and deterministic: world
// ticks execute in fixed actor shards with splitmix-derived per-shard
// RNG streams, RPC side effects buffer into per-lane queues merged in
// shard order (internal/netsim Effects/Fanout), and crawls, provider-
// record collection and the analysis stages fan out over a bounded
// worker pool — byte-identical output for every -workers value.
//
// Observation streams: the monitoring vantage points (Bitswap monitor,
// Hydra logger) fold every event into bounded per-vantage statistics
// (internal/trace Sink/Accum/Pipeline, fed through the same effect
// lanes) instead of materializing the raw trace, which keeps memory
// bounded by distinct identifiers rather than traffic volume. On top of
// that, identifiers themselves are interned into dense uint32 handles
// (internal/intern: PeerH/CIDH/AddrH, deterministic append-only tables
// whose digest is pinned across worker counts and checkpoint/resume),
// and the hot stores are columnar — flat handle-indexed ledgers with
// day-bucketed expiry instead of identifier-keyed maps — which makes
// the scale.* scenario family (-preset scale.2x/4x/10x/25x,
// Config.Scaled cloning hooks) routine under bounded RSS. Raw event
// logs are available behind the explicit -retain-trace /
// RunConfig.RetainTrace opt-in; streaming and batch results are pinned
// equal by the sink-vs-log equivalence property in
// internal/simtest/invariants.
//
// A counterfactual layer (internal/counterfactual) turns the calibrated
// replay into an instrument: named interventions — hydra-dissolution,
// aws-outage, gateway-surge, no-cloud-providers, churn-2x, composable
// via -what-if — rewrite the scenario before the campaign runs, a
// paired runner observes baseline and intervention worlds from one
// worker budget, and the whatif.* delta experiments render
// baseline/what-if/delta rows for the paper's reliance claims. The
// conservation laws no intervention may break are property-tested in
// internal/simtest/invariants.
//
// An adversarial family (internal/attack) executes the paper's
// attack-surface map through the same machinery: attack.sybil-eclipse,
// attack.provider-spam, attack.gateway-stampede and
// attack.targeted-censorship register as ordinary interventions (-what-if
// attack.*, @E:attack.* timeline epochs, the timeline.siege preset),
// tunable via the -attack-params grammar. Each attack carries an
// invariant contract: the attack-surface invariants it must break are
// asserted as expected failures — a contained attack fails the suite —
// while the rest must hold, over seeds 1–5 under the race detector.
//
// A network-realism layer (internal/netsim LinkProfile) adds a
// deterministic per-link impairment model: every RPC crosses a
// (cloud/residential × cloud/residential) link pair and draws a delay ±
// jitter and a loss verdict from lane-seeded streams, accruing virtual
// (never wall) time. Profiles parse from a canonical grammar
// ("cloud-cloud=5ms±2;resi-cloud=40ms±15,loss=0.02") with named presets
// — net.ideal (identity, bit-identical to the unimpaired engine),
// net.measured, net.degraded — selected via -net-profile or
// scenario.Config.NetProfile, and schedulable as what-ifs and timeline
// epochs (@E:net.degraded). Per-phase durations fold into bounded
// percentile sketches (internal/stats.Sketch via trace.TimingSink),
// rendered by the latency.* experiments; the conservation laws (loss
// accounting, virtual-clock monotonicity, sketch-vs-exact equivalence)
// are property-tested in internal/simtest/invariants.
//
// A timeline layer (internal/timeline) makes time a first-class axis:
// a campaign becomes a sequence of epochs over one evolving world,
// driven by a declarative schedule (-timeline
// "epochs=14;@5:hydra-dissolution", or the timeline.* presets) whose
// events — provider arrivals and departures, churn drift, any
// registered intervention — fire at epoch boundaries. core.RunTimeline
// reuses the sharded worker pool and streaming sinks per epoch and the
// timeline.* experiments render epoch-tagged rows; warm-start
// checkpoints (scenario.World.Snapshot state digests, replay-verified
// by core.ResumeTimeline) make a resumed run byte-identical to a
// straight-through one, and the invariant suite holds at every epoch
// boundary.
//
// A campaign service (cmd/tcsb-server) puts the engine behind a
// long-running HTTP/JSON API: the experiments registry and preset
// families served machine-readable, single runs (POST /v1/runs) and
// parameter sweeps (POST /v1/sweeps — seeds × scales × presets × net
// profiles × what-if/timeline cells) executed by a bounded campaign
// fleet under one worker budget. The CLI and the server reduce their
// inputs to one canonical core.RunRequest resolved in one place
// (experiments.Resolve), which keys a content-addressed run cache
// (internal/runcache): determinism makes hits exact — byte-identical
// to a fresh run — and concurrent identical requests coalesce into a
// single campaign. Invalid input is an exit-2 diagnostic or an HTTP
// 4xx, never a panic.
//
// A longitudinal layer (internal/analyze) lets runs outlive the
// process: -archive-dir persists each campaign as a run archive — the
// exact JSONL byte stream the run cache stores plus a manifest of the
// canonical request — written by the CLI after rendering and by the
// server on every cache fill (which also primes the cache back from
// the archive at boot, so a restart serves prior runs as hits). The
// analyze-only mode (tcsb-experiments -analyze, GET|POST /v1/analyze)
// runs no simulation: it re-ingests the archive, groups runs by
// canonical request shape, computes cross-run deltas and per-epoch
// drift slopes, and alerts against the pinned rules in
// expectations.json (absolute bounds, relative-change thresholds,
// drift ceilings; CLI exit 1 on a breach). The report is
// byte-deterministic for identical archive sets.
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// substitution rationale, and EXPERIMENTS.md for paper-vs-measured
// results (regenerable via `go run ./cmd/tcsb-experiments -json`). The
// experiment registry also drives the benchmarks in bench_test.go:
//
//	go test -bench=BenchmarkExperiments -benchmem .
//	go test -bench=BenchmarkExperimentEngine .
package tcsb
