// Resilience: crawl a simulated DHT, build the topology graph, and run
// the paper's node-removal experiment (Fig. 8): random failures vs a
// targeted attack on the highest-degree nodes, with a 95% confidence
// interval over repeated random runs.
package main

import (
	"fmt"
	"math/rand"

	"tcsb/internal/graph"
	"tcsb/internal/report"
	"tcsb/internal/scenario"
	"tcsb/internal/stats"
)

func main() {
	cfg := scenario.DefaultConfig().Scaled(0.3)
	cfg.Seed = 17
	w := scenario.NewWorld(cfg)
	w.RunDays(1, nil)

	snap := w.Crawl(1)
	g := graph.FromSnapshot(snap)
	fmt.Printf("crawled graph: %d peers (%d crawlable), %d directed edges\n\n",
		g.N(), g.NumCrawlable(), g.Edges())

	// Degree distribution (Fig. 7).
	outs := g.OutDegrees()
	ins := g.InDegrees()
	dt := &report.Table{Title: "Degree distribution (paper Fig. 7)", Columns: []string{"metric", "value"}}
	dt.AddRow("out-degree p10", fmt.Sprintf("%.0f", stats.Percentile(outs, 10)))
	dt.AddRow("out-degree median", fmt.Sprintf("%.0f", stats.Percentile(outs, 50)))
	dt.AddRow("out-degree p90", fmt.Sprintf("%.0f", stats.Percentile(outs, 90)))
	dt.AddRow("in-degree p90", fmt.Sprintf("%.0f", stats.Percentile(ins, 90)))
	dt.AddRow("in-degree max", fmt.Sprintf("%.0f", stats.Percentile(ins, 100)))
	fmt.Println(dt)

	adj := g.Undirected()
	fractions := []float64{0.1, 0.3, 0.5, 0.7, 0.9}

	// Random removals: 10 repetitions with CI.
	rng := rand.New(rand.NewSource(1))
	samples := make([][]float64, len(fractions))
	for rep := 0; rep < 10; rep++ {
		curve := graph.RemovalCurve(adj, graph.RandomOrder(g.N(), rng))
		for i, v := range graph.SampleCurve(curve, fractions) {
			samples[i] = append(samples[i], v)
		}
	}
	targeted := graph.SampleCurve(graph.RemovalCurve(adj, graph.TargetedOrder(adj)), fractions)

	t := &report.Table{
		Title:   "Largest connected component among remaining nodes (paper Fig. 8)",
		Columns: []string{"removed", "random (mean ± 95% CI)", "targeted"},
	}
	for i, f := range fractions {
		mean, hw := stats.MeanCI95(samples[i])
		t.AddRow(report.Pct(f), fmt.Sprintf("%s ± %.3f", report.Pct(mean), hw), report.Pct(targeted[i]))
	}
	fmt.Println(t)
	fmt.Println("The overlay is very robust to random failures (scale-free structure)")
	fmt.Println("and substantially more vulnerable to targeted removals, as in the paper.")
}
