// Futureweb: the Section 9 discussion as running code. Compares content
// resolution through the decentralized DHT against the cloud-hosted
// network indexer the paper warns about, demonstrates the indexer
// operator's censorship power and the DHT-fallback mitigation, and shows
// the IPNS layer keeping a mutable name pointing at evolving content.
package main

import (
	"fmt"

	"tcsb/internal/dht"
	"tcsb/internal/ids"
	"tcsb/internal/indexer"
	"tcsb/internal/ipns"
	"tcsb/internal/report"
	"tcsb/internal/scenario"
)

func main() {
	cfg := scenario.DefaultConfig().Scaled(0.2)
	cfg.Seed = 23
	w := scenario.NewWorld(cfg)

	// A publisher serves a website over IPFS.
	publisher := w.Actors[w.ServerIDs()[10]]
	site1 := ids.CIDFromContent([]byte("my website, v1"))
	publisher.Node.AddBlock(site1)
	publisher.Node.Provide(site1)

	// --- Indexer vs DHT (Fig.-less, Section 9) ---
	ix := indexer.New()
	ix.Announce(w.Net.Info(publisher.ID), []ids.CID{site1})

	walker := dht.NewWalker(w.Net, ids.PeerIDFromSeed(0xfe11))
	seeds := w.SeedsNear(site1.Key(), 8)

	before := w.Net.TotalMessages()
	_, stats := walker.FindProviders(seeds, site1, dht.FindProvidersOpts{})
	dhtRPCs := w.Net.TotalMessages() - before

	t := &report.Table{
		Title:   "Resolution cost: centralized indexer vs DHT (paper §9)",
		Columns: []string{"path", "overlay RPCs", "peers queried"},
	}
	t.AddRow("network indexer", 0, 0)
	t.AddRow("DHT walk", fmt.Sprintf("%d", dhtRPCs), stats.Queried)
	fmt.Println(t)

	// --- Censorship and the DHT fallback ---
	ix.Block(site1)
	res := indexer.ResolveWithFallback(ix, walker, seeds, site1)
	fmt.Printf("indexer blocks the CID: resolution via indexer=%v, via DHT fallback records=%d\n",
		res.ViaIndexer, len(res.Records))
	fmt.Println("→ with the DHT kept as fallback, the operator cannot make content unreachable.")
	fmt.Println()

	// --- IPNS: a mutable name over immutable CIDs ---
	registry := ipns.NewRegistry()
	pub := ipns.NewPublisher(77)
	now := w.Net.Clock.Now()
	if err := pub.Update(registry, site1, now); err != nil {
		panic(err)
	}
	got, _ := registry.Resolve(pub.Name(), now)
	fmt.Printf("IPNS %s -> %s (v1)\n", pub.Name(), got.Short())

	// The site changes: same name, new CID.
	site2 := ids.CIDFromContent([]byte("my website, v2"))
	publisher.Node.AddBlock(site2)
	publisher.Node.Provide(site2)
	if err := pub.Update(registry, site2, now+60); err != nil {
		panic(err)
	}
	got, _ = registry.Resolve(pub.Name(), now+120)
	fmt.Printf("IPNS %s -> %s (v2, after update)\n", pub.Name(), got.Short())

	// A replayed stale record cannot roll the name back.
	stale := ipns.NewRecord(pub.Name(), site1, 1, now+180)
	if ok, _ := registry.Publish(stale, now+180); ok {
		panic("stale record accepted")
	}
	got, _ = registry.Resolve(pub.Name(), now+240)
	fmt.Printf("IPNS %s -> %s (after replay attempt: unchanged)\n", pub.Name(), got.Short())
}
