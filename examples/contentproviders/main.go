// Contentproviders: collect provider records for a daily CID sample with
// the paper's modified (exhaustive) FindProviders, verify reachability,
// and classify providers and content by their cloud reliance
// (Figs. 14-16).
package main

import (
	"fmt"
	"math/rand"
	"net/netip"

	"tcsb/internal/analysis"
	"tcsb/internal/ids"
	"tcsb/internal/netsim"
	"tcsb/internal/provrecords"
	"tcsb/internal/report"
	"tcsb/internal/scenario"
)

func main() {
	cfg := scenario.DefaultConfig().Scaled(0.25)
	cfg.Seed = 13
	w := scenario.NewWorld(cfg)

	collector := provrecords.NewCollector(w.Net, w.CollectorID(),
		func(t ids.Key) []netsim.PeerInfo { return w.SeedsNear(t, 8) })
	rng := rand.New(rand.NewSource(99))

	var col provrecords.Collection
	fmt.Println("simulating 3 days; collecting each day's sampled CIDs...")
	for day := 0; day < 3; day++ {
		w.RunDays(1, nil)
		sample := w.Monitor.SampleDay(int64(day), 150, rng)
		collector.CollectDay(&col, sample, int64(day))
		fmt.Printf("day %d: sampled %d CIDs\n", day, len(sample))
	}
	fmt.Printf("\ncollected %d (CID, day) entries, %d records, %d distinct providers\n\n",
		col.CIDs(), col.TotalRecords(), col.UniqueProviders())

	db := w.DB
	isCloud := func(ip netip.Addr) bool { return db.Lookup(ip).Cloud() }
	profiles := analysis.Profiles(&col, isCloud)

	// Fig. 14: provider classification + relay usage.
	shares := analysis.ClassShares(profiles)
	t := &report.Table{
		Title:   "Provider classification (paper Fig. 14)",
		Columns: []string{"class", "share"},
	}
	for _, cl := range []analysis.Class{analysis.NATed, analysis.CloudBased, analysis.NonCloudBased, analysis.Hybrid} {
		t.AddRow(cl.String(), report.Pct(shares[cl]))
	}
	fmt.Println(t)
	fmt.Printf("NAT-ed providers relaying through cloud nodes: %s (paper: ~80%%)\n\n",
		report.Pct(analysis.RelayCloudShare(profiles, isCloud)))

	// Fig. 15: provider popularity.
	pareto := analysis.PopularityPareto(profiles)
	fmt.Println(report.CurveTable("Provider popularity (paper Fig. 15)", pareto,
		[]float64{0.01, 0.05, 0.10, 0.25}))

	// Fig. 16: content-level cloud reliance.
	cc := analysis.ContentCloud(&col, isCloud)
	ct := &report.Table{
		Title:   "Content cloud reliance (paper Fig. 16)",
		Columns: []string{"metric", "value"},
	}
	ct.AddRow("CIDs with reachable providers", cc.CIDs)
	ct.AddRow(">=1 cloud provider", report.Pct(cc.AtLeastOneCloud))
	ct.AddRow(">=half cloud providers", report.Pct(cc.MajorityCloud))
	ct.AddRow("only cloud providers", report.Pct(cc.OnlyCloud))
	ct.AddRow(">=1 non-cloud provider", report.Pct(cc.AtLeastOneNonCloud))
	fmt.Println(ct)
}
