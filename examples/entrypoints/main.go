// Entrypoints: measure the bridges between the classic web and IPFS —
// DNSLink domains (active DNS scanning), public HTTP gateways (unique-
// content probing through the Bitswap monitor), and ENS contenthash
// records (event-log extraction) — reproducing Section 7 of the paper.
package main

import (
	"fmt"

	"tcsb/internal/dnslink"
	"tcsb/internal/ens"
	"tcsb/internal/gwprobe"
	"tcsb/internal/report"
	"tcsb/internal/scenario"
)

func main() {
	cfg := scenario.DefaultConfig().Scaled(0.25)
	cfg.Seed = 3
	w := scenario.NewWorld(cfg)
	w.PopulateDNSLink(300)
	resolvers := w.PopulateENS(200)
	w.RunDays(1, nil)

	// --- DNSLink (Fig. 17) ---
	scanner := dnslink.NewScanner(w.DNS, w.GatewayDomains())
	results := scanner.Scan()
	fmt.Printf("DNSLink scan: %d domains with valid entries\n\n", len(results))
	fmt.Println(report.SharesTable("DNSLink fronting IPs by provider (Fig. 17a)",
		"provider", normalize(dnslink.IPsByAttr(results, w.ProviderAttr()))))
	fmt.Println(report.SharesTable("DNSLink domains by gateway (Fig. 17b)",
		"gateway", dnslink.GatewayShares(results, "non-gateway")))

	// --- Gateway identification (Section 3 / Fig. 18) ---
	prober := gwprobe.New(w.Monitor, 0xbeef, w.Net.Online)
	census := prober.Census(w.PublicGateways(), 12)
	total := 0
	for domain, overlayIDs := range census {
		fmt.Printf("gateway %-22s -> %d overlay IDs discovered\n", domain, len(overlayIDs))
		total += len(overlayIDs)
	}
	fmt.Printf("census: %d overlay IDs total (ground truth for public gateways: %d)\n\n",
		total, countPublicTruth(w))

	// --- ENS (Fig. 20) ---
	records := ens.Extract(resolvers)
	fmt.Printf("ENS extraction: %d ipfs-ns records\n", len(records))
	cloud, totalIPs := 0, 0
	providerDist := map[string]float64{}
	seen := map[string]bool{}
	for _, r := range records {
		for _, rec := range w.FindProvidersExhaustive(r.CID) {
			for _, a := range rec.Provider.Addrs {
				if !a.IP.IsValid() || seen[a.IP.String()] {
					continue
				}
				seen[a.IP.String()] = true
				totalIPs++
				info := w.DB.Lookup(a.IP)
				providerDist[info.Provider]++
				if info.Cloud() {
					cloud++
				}
			}
		}
	}
	fmt.Println(report.SharesTable("ENS content providers (Fig. 20a)", "provider", normalize(providerDist)))
	if totalIPs > 0 {
		fmt.Printf("cloud share of ENS provider IPs: %s (paper: 82%%)\n",
			report.Pct(float64(cloud)/float64(totalIPs)))
	}
}

func normalize(m map[string]float64) map[string]float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	out := make(map[string]float64, len(m))
	for k, v := range m {
		if total > 0 {
			out[k] = v / total
		}
	}
	return out
}

// countPublicTruth counts the true overlay IDs of the public gateways.
func countPublicTruth(w *scenario.World) int {
	n := 0
	for _, gw := range w.PublicGateways() {
		n += len(gw.OverlayIDs())
	}
	return n
}
