// Trafficstudy: run the two monitoring vantage points of the paper — the
// Bitswap monitor and the Hydra booster — on a busy simulated network,
// then measure traffic centralization (Figs. 10-12) and the protocol mix
// (Section 5).
package main

import (
	"fmt"
	"net/netip"

	"tcsb/internal/report"
	"tcsb/internal/scenario"
	"tcsb/internal/trace"
)

func main() {
	cfg := scenario.DefaultConfig().Scaled(0.25)
	cfg.Seed = 7
	w := scenario.NewWorld(cfg)

	fmt.Println("simulating 3 days of traffic...")
	w.RunDays(3, nil)

	hydraLog := w.Hydra.Log()
	bitswapLog := w.Monitor.Log()
	fmt.Printf("hydra vantage: %d DHT messages; monitor: %d Bitswap broadcasts\n\n",
		hydraLog.Len(), bitswapLog.Len())

	// Section 5: protocol mix.
	mix := hydraLog.Mix()
	mt := &report.Table{Title: "DHT traffic mix (paper: 57/40/3)", Columns: []string{"class", "share"}}
	for _, cl := range []trace.Class{trace.Download, trace.Advertise, trace.Other} {
		mt.AddRow(cl.String(), report.Pct(mix[cl]))
	}
	fmt.Println(mt)

	// Fig. 11: IP-level centralization with the cloud split.
	cloudAttr := w.CloudAttr()
	group := func(ip netip.Addr) string { return cloudAttr(ip) }
	for _, v := range []struct {
		name string
		log  *trace.Log
	}{{"DHT (hydra)", hydraLog}, {"Bitswap (monitor)", bitswapLog}} {
		act := v.log.ActivityByIP()
		t := &report.Table{
			Title:   fmt.Sprintf("%s — IP centralization (paper Fig. 11)", v.name),
			Columns: []string{"metric", "value"},
		}
		t.AddRow("top 5% of IPs' traffic share", report.Pct(trace.TopShare(act, 0.05)))
		for g, s := range trace.GroupTrafficShare(act, group) {
			t.AddRow("traffic share: "+g, report.Pct(s))
		}
		for g, s := range trace.GroupMemberShare(act, group) {
			t.AddRow("IP share: "+g, report.Pct(s))
		}
		fmt.Println(t)
	}

	// Fig. 13: platform attribution via hydra head set + reverse DNS.
	attr := func(e trace.Event) string { return w.PlatformOf(e) }
	fmt.Println(report.SharesTable(
		"Platforms, DHT download traffic (paper Fig. 13)", "platform",
		hydraLog.Filter(func(e trace.Event) bool { return e.Class() == trace.Download }).GroupShare(attr)))
	fmt.Println(report.SharesTable(
		"Platforms, DHT advertise traffic (paper Fig. 13)", "platform",
		hydraLog.Filter(func(e trace.Event) bool { return e.Class() == trace.Advertise }).GroupShare(attr)))
}
