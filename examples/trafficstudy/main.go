// Trafficstudy: run the two monitoring vantage points of the paper — the
// Bitswap monitor and the Hydra booster — on a busy simulated network,
// then measure traffic centralization (Figs. 10-12) and the protocol mix
// (Section 5).
//
// The vantage points stream: every analysis below reads the bounded
// trace.Accum the pipelines fold events into, so no raw event log is
// ever materialized (set scenario.Config.RetainTrace to keep one).
package main

import (
	"fmt"
	"net/netip"

	"tcsb/internal/report"
	"tcsb/internal/scenario"
	"tcsb/internal/trace"
)

func main() {
	cfg := scenario.DefaultConfig().Scaled(0.25)
	cfg.Seed = 7
	w := scenario.NewWorld(cfg)

	fmt.Println("simulating 3 days of traffic...")
	w.RunDays(3, nil)

	hydra := w.Hydra.Stats()
	bitswap := w.Monitor.Stats()
	fmt.Printf("hydra vantage: %d DHT messages; monitor: %d Bitswap broadcasts\n\n",
		hydra.Len(), bitswap.Len())

	// Section 5: protocol mix.
	mix := hydra.Mix()
	mt := &report.Table{Title: "DHT traffic mix (paper: 57/40/3)", Columns: []string{"class", "share"}}
	for _, cl := range []trace.Class{trace.Download, trace.Advertise, trace.Other} {
		mt.AddRow(cl.String(), report.Pct(mix[cl]))
	}
	fmt.Println(mt)

	// Fig. 11: IP-level centralization with the cloud split.
	cloudAttr := w.CloudAttr()
	group := func(ip netip.Addr) string { return cloudAttr(ip) }
	for _, v := range []struct {
		name  string
		stats *trace.Accum
	}{{"DHT (hydra)", hydra}, {"Bitswap (monitor)", bitswap}} {
		act := v.stats.ActivityByIP()
		t := &report.Table{
			Title:   fmt.Sprintf("%s — IP centralization (paper Fig. 11)", v.name),
			Columns: []string{"metric", "value"},
		}
		t.AddRow("top 5% of IPs' traffic share", report.Pct(trace.TopShare(act, 0.05)))
		for g, s := range trace.GroupTrafficShare(act, group) {
			t.AddRow("traffic share: "+g, report.Pct(s))
		}
		for g, s := range trace.GroupMemberShare(act, group) {
			t.AddRow("IP share: "+g, report.Pct(s))
		}
		fmt.Println(t)
	}

	// Fig. 13: platform attribution — hydra heads by identity (the
	// pipelines tag them at ingest), everything else by reverse DNS.
	fmt.Println(report.SharesTable(
		"Platforms, DHT download traffic (paper Fig. 13)", "platform",
		hydra.ClassTaggedGroupShareByIP(trace.Download, scenario.PlatformLabelHydra, w.PlatformOfIP)))
	fmt.Println(report.SharesTable(
		"Platforms, DHT advertise traffic (paper Fig. 13)", "platform",
		hydra.ClassTaggedGroupShareByIP(trace.Advertise, scenario.PlatformLabelHydra, w.PlatformOfIP)))
}
