// Command counterfactuals demonstrates the what-if instrument: it runs
// paired baseline/intervention campaigns for two of the paper's central
// reliance questions — what happens to IPFS when the Hydra fleet
// dissolves, and what remains of cloud concentration when ordinary
// servers leave the cloud — and prints the delta tables.
//
// Small scale, a few seconds:
//
//	go run ./examples/counterfactuals
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"

	"tcsb/internal/core"
	"tcsb/internal/counterfactual"
	"tcsb/internal/experiments"
	"tcsb/internal/scenario"
)

func main() {
	cfg := scenario.DefaultConfig().Scaled(0.15)
	cfg.Seed = 42
	rc := core.DefaultRunConfig()
	rc.Days = 2
	rc.Workers = runtime.NumCPU()

	for _, spec := range []string{"hydra-dissolution", "no-cloud-providers,churn-2x"} {
		ivs, err := counterfactual.Parse(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== what if: %s ===\n\n", spec)
		baseline, whatif := counterfactual.Observe(cfg, rc, ivs)
		results, err := experiments.RunPaired(baseline, whatif,
			counterfactual.NamesOf(ivs), []string{"whatif.fig3", "whatif.fig8", "whatif.fig13"}, 2)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.RenderText(os.Stdout, results); err != nil {
			log.Fatal(err)
		}
	}
}
