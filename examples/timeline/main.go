// Command timeline demonstrates the longitudinal engine: one evolving
// world stepped through a multi-epoch schedule with a mid-run
// intervention, plus a warm-start checkpoint/resume proving the replay
// contract — the resumed run's epochs splice byte-identically onto the
// prefix's.
//
// Small scale, a few seconds:
//
//	go run ./examples/timeline
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"

	"tcsb/internal/core"
	"tcsb/internal/counterfactual"
	"tcsb/internal/experiments"
	"tcsb/internal/scenario"
)

func main() {
	cfg := scenario.DefaultConfig().Scaled(0.15)
	cfg.Seed = 42
	rc := core.DefaultRunConfig()
	rc.Workers = runtime.NumCPU()

	// A fortnight with the Hydra fleet dissolving at epoch 5, a provider
	// departing at epoch 8 and a wave of arrivals at epoch 11.
	spec := "epochs=14;@5:hydra-dissolution;@8:depart:hetzner_online;@11:arrive:choopa:60"
	sch, err := counterfactual.CompileSchedule(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== timeline: %s ===\n\n", sch.Spec())
	tr, err := core.RunTimeline(cfg, rc, sch)
	if err != nil {
		log.Fatal(err)
	}
	results, err := experiments.RunTimeline(tr, nil, 2)
	if err != nil {
		log.Fatal(err)
	}
	if err := experiments.RenderText(os.Stdout, results); err != nil {
		log.Fatal(err)
	}

	// Warm start: stop at epoch 7, resume from the checkpoint, and show
	// the resumed epochs match the straight-through run's exactly.
	prefix, err := core.RunTimelineUntil(cfg, rc, sch, 7)
	if err != nil {
		log.Fatal(err)
	}
	resumed, err := core.ResumeTimeline(cfg, rc, sch, prefix.Final)
	if err != nil {
		log.Fatal(err)
	}
	match := len(prefix.Epochs)+len(resumed.Epochs) == len(tr.Epochs)
	for i, e := range append(prefix.Epochs, resumed.Epochs...) {
		match = match && e.Digest == tr.Epochs[i].Digest
	}
	fmt.Printf("\ncheckpoint at epoch %d, resumed %d epochs; spliced digests match straight-through: %v\n",
		prefix.Final.EpochsDone, len(resumed.Epochs), match)
}
