// Quickstart: build a small simulated IPFS network, crawl it twice, and
// compare the paper's two counting methodologies (G-IP vs A-N) on the
// resulting dataset — the core methodological point of the paper in
// under a hundred lines.
package main

import (
	"fmt"

	"tcsb/internal/counting"
	"tcsb/internal/crawler"
	"tcsb/internal/ipdb"
	"tcsb/internal/report"
	"tcsb/internal/scenario"
)

func main() {
	// A ~300-server world with the paper's cloud/provider/country mix.
	cfg := scenario.DefaultConfig().Scaled(0.2)
	cfg.Seed = 42
	w := scenario.NewWorld(cfg)

	// Crawl, let half a day of churn and IP rotation pass, crawl again.
	var series crawler.Series
	series.Add(w.Crawl(1))
	for t := 0; t < 12; t++ {
		w.StepTick()
	}
	series.Add(w.Crawl(2))

	for _, snap := range series.Snapshots {
		fmt.Printf("crawl %d: %d peers discovered, %d crawlable, ~%.0fs modeled duration\n",
			snap.ID, snap.Discovered(), snap.Crawlable(), snap.ModeledDurationSec)
	}
	fmt.Println()

	// Normalize to (crawl, peer, IP) rows and apply both methodologies.
	dataset := counting.FromSeries(&series)
	cloudAttr := w.CloudAttr()
	gip := dataset.GIP(cloudAttr)
	an := dataset.AN(cloudAttr, counting.CloudBothClassifier(ipdb.NonCloud))

	t := &report.Table{
		Title:   "Cloud status by counting methodology (paper Fig. 3)",
		Columns: []string{"methodology", "cloud", "non-cloud"},
	}
	t.AddRow("G-IP (global unique IPs)",
		report.Pct(share(gip, "cloud")), report.Pct(share(gip, ipdb.NonCloud)))
	t.AddRow("A-N (avg crawls, unique nodes)",
		report.Pct(share(an, "cloud")), report.Pct(share(an, ipdb.NonCloud)))
	fmt.Println(t)

	// Geolocation, same dataset (paper Fig. 6).
	geo := report.SharesTable("Nodes by country (A-N)", "country",
		normalize(dataset.AN(w.CountryAttr(), counting.MajorityVote)))
	geo.Rows = geo.Rows[:min(8, len(geo.Rows))]
	fmt.Println(geo)

	fmt.Println("The A-N estimate is the network's typical state; G-IP inflates the")
	fmt.Println("non-cloud share because churning residential peers rotate addresses.")
}

func share(m map[string]float64, key string) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	if total == 0 {
		return 0
	}
	return m[key] / total
}

func normalize(m map[string]float64) map[string]float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	out := make(map[string]float64, len(m))
	for k, v := range m {
		if total > 0 {
			out[k] = v / total
		}
	}
	return out
}
